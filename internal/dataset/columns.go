package dataset

import (
	"sort"
	"time"

	"repro/internal/intern"
)

// Columns is the interned, columnar storage behind Dataset.Records:
// one parallel slice per field, identity strings replaced by stable
// intern.Symbols from one shared table, and every record's wire bytes
// packed into a single contiguous buffer addressed by (offset, length)
// spans. A million records cost eleven slice headers instead of a
// million Record structs, and equality checks on identities become
// integer compares.
//
// Columns is append-only from the caller's perspective; the row-shaped
// Record remains the compatibility view and is materialized on demand
// (interned strings and raw-span subslices are shared, so a view row
// costs no copying). Consumers must treat Raw views as read-only.
type columns struct {
	tab    *intern.Table
	device []intern.Symbol
	vendor []intern.Symbol
	model  []intern.Symbol
	typ    []intern.Symbol
	user   []intern.Symbol
	sni    []intern.Symbol
	stack  []intern.Symbol
	timeNS []int64
	rawOff []uint32
	rawLen []uint32
	rawBuf []byte
}

func newColumns() *columns {
	return &columns{tab: intern.NewTable()}
}

// appendSyms appends one record given already-interned symbols and an
// already-written rawBuf span.
func (c *columns) appendSyms(dev, ven, mod, typ, user, sni, stack intern.Symbol, timeNS int64, off, n uint32) {
	c.device = append(c.device, dev)
	c.vendor = append(c.vendor, ven)
	c.model = append(c.model, mod)
	c.typ = append(c.typ, typ)
	c.user = append(c.user, user)
	c.sni = append(c.sni, sni)
	c.stack = append(c.stack, stack)
	c.timeNS = append(c.timeNS, timeNS)
	c.rawOff = append(c.rawOff, off)
	c.rawLen = append(c.rawLen, n)
}

// appendRow interns one row-shaped Record and copies its wire bytes
// into the shared buffer.
func (c *columns) appendRow(r Record) {
	off := uint32(len(c.rawBuf))
	c.rawBuf = append(c.rawBuf, r.Raw...)
	c.appendSyms(
		c.tab.Intern(r.DeviceID),
		c.tab.Intern(r.Vendor),
		c.tab.Intern(r.Model),
		c.tab.Intern(r.Type),
		c.tab.Intern(r.User),
		c.tab.Intern(r.SNI),
		c.tab.Intern(r.StackID),
		r.Time.UnixNano(),
		off, uint32(len(r.Raw)),
	)
}

func (c *columns) len() int { return len(c.timeNS) }

// swap exchanges two records across every column. Raw spans are
// addressed (offset, length) per record — independent arrays, not
// prefix-encoded — precisely so records stay swappable after the
// buffer is laid down in generation order.
func (c *columns) swap(i, j int) {
	c.device[i], c.device[j] = c.device[j], c.device[i]
	c.vendor[i], c.vendor[j] = c.vendor[j], c.vendor[i]
	c.model[i], c.model[j] = c.model[j], c.model[i]
	c.typ[i], c.typ[j] = c.typ[j], c.typ[i]
	c.user[i], c.user[j] = c.user[j], c.user[i]
	c.sni[i], c.sni[j] = c.sni[j], c.sni[i]
	c.stack[i], c.stack[j] = c.stack[j], c.stack[i]
	c.timeNS[i], c.timeNS[j] = c.timeNS[j], c.timeNS[i]
	c.rawOff[i], c.rawOff[j] = c.rawOff[j], c.rawOff[i]
	c.rawLen[i], c.rawLen[j] = c.rawLen[j], c.rawLen[i]
}

// byTime sorts the columns by observation time, mirroring the order the
// row-based generator produced (sort.Sort and sort.Slice share one
// sorting algorithm, so the permutation — and therefore the report
// bytes — is unchanged for identical key comparisons).
type byTime struct{ c *columns }

func (s byTime) Len() int           { return s.c.len() }
func (s byTime) Less(i, j int) bool { return s.c.timeNS[i] < s.c.timeNS[j] }
func (s byTime) Swap(i, j int)      { s.c.swap(i, j) }

// Records is a read-only view over a contiguous range of columnar
// records. The zero value is an empty view. Copying a Records copies
// three words; Slice re-slices without touching the data.
type Records struct {
	c      *columns
	lo, hi int
}

// RecordsFromRows builds a standalone columnar store from row-shaped
// records (the service's batch-decode path), interning identities into
// a fresh table and packing wire bytes into one buffer.
func RecordsFromRows(rows []Record) Records {
	c := newColumns()
	for _, r := range rows {
		c.appendRow(r)
	}
	return Records{c: c, hi: c.len()}
}

// Len returns the number of records in the view.
func (rs Records) Len() int { return rs.hi - rs.lo }

// Slice returns the subview [lo, hi) relative to rs.
func (rs Records) Slice(lo, hi int) Records {
	if lo < 0 || hi < lo || rs.lo+hi > rs.hi {
		panic("dataset: Records.Slice out of range")
	}
	return Records{c: rs.c, lo: rs.lo + lo, hi: rs.lo + hi}
}

// Table exposes the intern table the view's symbols resolve against.
func (rs Records) Table() *intern.Table { return rs.c.tab }

// At materializes record i as a row-shaped Record. Identity strings
// are the interned instances and Raw is a capacity-clamped view into
// the shared buffer — materializing is cheap, but callers must not
// modify Raw in place.
func (rs Records) At(i int) Record {
	c := rs.c
	j := rs.lo + i
	off, n := c.rawOff[j], c.rawLen[j]
	return Record{
		DeviceID: c.tab.Str(c.device[j]),
		Vendor:   c.tab.Str(c.vendor[j]),
		Model:    c.tab.Str(c.model[j]),
		Type:     c.tab.Str(c.typ[j]),
		User:     c.tab.Str(c.user[j]),
		Time:     time.Unix(0, c.timeNS[j]).UTC(),
		SNI:      c.tab.Str(c.sni[j]),
		StackID:  c.tab.Str(c.stack[j]),
		Raw:      c.rawBuf[off : off+n : off+n],
	}
}

// Rows materializes the whole view as row-shaped Records, for cold
// paths that want plain range loops. Hot paths should use the column
// accessors instead.
func (rs Records) Rows() []Record {
	if rs.Len() == 0 {
		return nil
	}
	out := make([]Record, rs.Len())
	for i := range out {
		out[i] = rs.At(i)
	}
	return out
}

// Column accessors: per-field reads without materializing a row.

// DeviceSym returns record i's device-ID symbol.
func (rs Records) DeviceSym(i int) intern.Symbol { return rs.c.device[rs.lo+i] }

// VendorSym returns record i's vendor symbol.
func (rs Records) VendorSym(i int) intern.Symbol { return rs.c.vendor[rs.lo+i] }

// TypeSym returns record i's device-type symbol.
func (rs Records) TypeSym(i int) intern.Symbol { return rs.c.typ[rs.lo+i] }

// UserSym returns record i's user symbol.
func (rs Records) UserSym(i int) intern.Symbol { return rs.c.user[rs.lo+i] }

// SNISym returns record i's SNI symbol; 0 means the record carried no
// SNI (Symbol 0 is always the empty string).
func (rs Records) SNISym(i int) intern.Symbol { return rs.c.sni[rs.lo+i] }

// StackSym returns record i's stack-ID symbol.
func (rs Records) StackSym(i int) intern.Symbol { return rs.c.stack[rs.lo+i] }

// TimeNS returns record i's observation time in Unix nanoseconds.
func (rs Records) TimeNS(i int) int64 { return rs.c.timeNS[rs.lo+i] }

// Raw returns a read-only view of record i's wire bytes.
func (rs Records) Raw(i int) []byte {
	c := rs.c
	off, n := c.rawOff[rs.lo+i], c.rawLen[rs.lo+i]
	return c.rawBuf[off : off+n : off+n]
}

// SNIs returns the distinct SNIs observed, sorted.
func (ds *Dataset) SNIs() []string {
	seen := map[intern.Symbol]bool{}
	tab := ds.Records.Table()
	var out []string
	for i := 0; i < ds.Records.Len(); i++ {
		if sym := ds.Records.SNISym(i); sym != 0 && !seen[sym] {
			seen[sym] = true
			out = append(out, tab.Str(sym))
		}
	}
	sort.Strings(out)
	return out
}

// SNIsByMinUsers returns SNIs observed from at least minUsers distinct
// users (the paper filtered SNIs seen from <= 2 users).
func (ds *Dataset) SNIsByMinUsers(minUsers int) []string {
	type sniUser struct{ sni, user intern.Symbol }
	seen := map[sniUser]bool{}
	count := map[intern.Symbol]int{}
	for i := 0; i < ds.Records.Len(); i++ {
		sym := ds.Records.SNISym(i)
		if sym == 0 {
			continue
		}
		su := sniUser{sym, ds.Records.UserSym(i)}
		if !seen[su] {
			seen[su] = true
			count[sym]++
		}
	}
	tab := ds.Records.Table()
	var out []string
	for sym, n := range count {
		if n >= minUsers {
			out = append(out, tab.Str(sym))
		}
	}
	sort.Strings(out)
	return out
}
