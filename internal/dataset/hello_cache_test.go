package dataset

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/tlswire"
)

// TestStampHelloMatchesDirect checks that template stamping into the
// columnar raw buffer produces byte-identical records to direct
// marshaling, including rng stream consumption (one 32-byte read per
// record), and that later rounds hit the template cache.
func TestStampHelloMatchesDirect(t *testing.T) {
	prints := []fingerprint.Fingerprint{
		{Version: tlswire.VersionTLS12, CipherSuites: []uint16{0xC030, 0x009D}, Extensions: []uint16{0, 10, 11}},
		{Version: tlswire.VersionTLS13, CipherSuites: []uint16{0x1301, 0x1302}, Extensions: []uint16{0, 43, 51}},
		{Version: tlswire.VersionTLS10, CipherSuites: []uint16{0x0035}},
		{Version: tlswire.VersionSSL30, CipherSuites: []uint16{0x0004, 0x0005}, Extensions: []uint16{10}},
	}
	snis := []string{"", "cloud.example.com", "a.b.example.net"}
	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	cols := newColumns()
	cache := map[tmplKey][]byte{}
	for round := 0; round < 3; round++ { // later rounds hit the cache
		for i, p := range prints {
			stackID := "stack-" + string(rune('a'+i))
			for _, sni := range snis {
				want := buildHello(p, sni, rngA)
				key := tmplKey{stack: cols.tab.Intern(stackID), sni: cols.tab.Intern(sni)}
				off, n, hit := stampHello(cache, key, p, sni, cols, rngB)
				got := cols.rawBuf[off : off+n]
				if wantHit := round > 0; hit != wantHit {
					t.Fatalf("round %d print %d sni %q: cache hit = %v, want %v", round, i, sni, hit, wantHit)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d print %d sni %q: stamped record differs\n got %x\nwant %x", round, i, sni, got, want)
				}
			}
		}
	}
}

// TestGenerateRecordsUseTemplateCache confirms generation is still
// deterministic and that every record parses back to its stack SNI.
func TestGenerateRecordsUseTemplateCache(t *testing.T) {
	a := Generate(Config{Seed: 5, Scale: 0.3})
	b := Generate(Config{Seed: 5, Scale: 0.3})
	if a.Records.Len() != b.Records.Len() {
		t.Fatalf("record counts differ: %d vs %d", a.Records.Len(), b.Records.Len())
	}
	for i := 0; i < a.Records.Len(); i++ {
		if !bytes.Equal(a.Records.Raw(i), b.Records.Raw(i)) {
			t.Fatalf("record %d raw bytes differ between identical runs", i)
		}
	}
	for i, r := range a.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got := ch.SNI(); got != r.SNI {
			t.Fatalf("record %d: parsed SNI %q, record says %q", i, got, r.SNI)
		}
	}
}
