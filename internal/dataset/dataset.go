// Package dataset generates the synthetic crowdsourced IoT TLS dataset
// standing in for the IoT Inspector traces the paper used (2,014 devices,
// 286 models, 65 vendors, 721 users, 11,439 ClientHellos between
// 2019-04-29 and 2020-08-01).
//
// The generator is a structural model of how the real population produced
// its fingerprints: every vendor ships a handful of firmware core stacks
// drawn from era-appropriate TLS libraries and customized (mutated) per
// vendor; device types add application stacks; a fraction of devices
// carry per-device customizations (updates, third-party apps); shared
// SDKs (Netflix, Sonos, the Roku platform...) inject identical stacks
// into devices of *different* vendors and tie them to specific servers;
// a few devices run unmodified library builds (the 2.55% exact-match
// population); some legacy devices still emit SSL 3.0 hellos; Android-
// derived stacks GREASE. Every emitted record carries real ClientHello
// wire bytes produced by internal/tlswire.
//
// Everything is deterministic given Config.Seed.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/libcorpus"
	"repro/internal/tlswire"
)

// Config parameterizes generation.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Scale multiplies the population (1.0 = paper scale, ~2000 devices).
	Scale float64
	// Start and End bound the capture window. Zero values default to the
	// paper's window (2019-04-29 .. 2020-08-01).
	Start, End time.Time
}

// DefaultConfig is the paper-scale configuration.
func DefaultConfig() Config {
	return Config{Seed: 20231024, Scale: 1.0}
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2019, 4, 29, 0, 0, 0, 0, time.UTC)
	}
	if c.End.IsZero() {
		c.End = time.Date(2020, 8, 1, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// Device is one IoT device in the population.
type Device struct {
	// ID is the stable device identifier.
	ID string
	// Vendor name (one of the 65).
	Vendor string
	// Model is the product model label.
	Model string
	// Type is the device type ("tv", "camera", ...).
	Type string
	// User is the anonymized owner id.
	User string
	// Stacks are the TLS client instances the device uses.
	Stacks []*Stack
}

// Record is one observed ClientHello.
type Record struct {
	// DeviceID, Vendor, Model, Type, User identify the sender.
	DeviceID string
	Vendor   string
	Model    string
	Type     string
	User     string
	// Time of the observation.
	Time time.Time
	// SNI the hello carried.
	SNI string
	// StackID names the stack that produced the hello.
	StackID string
	// Raw is the marshaled TLS record containing the ClientHello.
	Raw []byte
}

// Hello parses the record's wire bytes.
func (r Record) Hello() (*tlswire.ClientHello, error) {
	return tlswire.ParseRecord(r.Raw)
}

// Dataset is the generated population and its observations.
type Dataset struct {
	Config  Config
	Devices []*Device
	Records []Record
	// SDKStacks indexes the shared SDK stacks by name.
	SDKStacks map[string]*Stack
	// VendorFQDNs maps each vendor to its own server pool.
	VendorFQDNs map[string][]string
}

// Generate builds the dataset.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Config:      cfg,
		SDKStacks:   buildSDKStacks(rng),
		VendorFQDNs: map[string][]string{},
	}

	vendors := Vendors()
	// SDK-owned FQDNs are fingerprint-tied (Section 4.4): no other stack
	// may visit them, so they are excluded from every other pool.
	sdkFQDN := map[string]bool{}
	for _, stack := range ds.SDKStacks {
		for _, sni := range stack.SNIs {
			sdkFQDN[sni] = true
		}
	}
	// Vendor server pools.
	for _, v := range vendors {
		var pool []string
		for _, sld := range v.SLDs {
			for _, fqdn := range FQDNsOf(sld) {
				if !sdkFQDN[fqdn] {
					pool = append(pool, fqdn)
				}
			}
		}
		ds.VendorFQDNs[v.Name] = pool
	}
	// Generic third-party pool.
	var genericPool []string
	for _, sld := range ThirdPartySLDs {
		for _, fqdn := range FQDNsOf(sld) {
			if !sdkFQDN[fqdn] {
				genericPool = append(genericPool, fqdn)
			}
		}
	}

	// Shared stack-group pools (vendors in a group draw the same cores
	// and type stacks).
	groupCores := map[string][]*Stack{}
	coreFor := func(v VendorProfile) []*Stack {
		key := v.StackGroup
		if key == "" {
			key = "solo:" + v.Name
		}
		if cores, ok := groupCores[key]; ok {
			return cores
		}
		n := 2 + rng.Intn(3) // 2-4 core stacks per pool
		pool := basePool(v.Profile)
		cores := make([]*Stack, 0, n)
		for i := 0; i < n; i++ {
			base := pool[rng.Intn(len(pool))]
			cores = append(cores, &Stack{
				ID:    fmt.Sprintf("core:%s:%d", key, i),
				Print: mutatePrint(base, rng),
			})
		}
		groupCores[key] = cores
		return cores
	}
	groupTypeStacks := map[string][]*Stack{}
	typeStacksFor := func(v VendorProfile, typ string) []*Stack {
		key := v.StackGroup
		if key == "" {
			key = "solo:" + v.Name
		}
		key += ":" + typ
		if ts, ok := groupTypeStacks[key]; ok {
			return ts
		}
		n := 1 + rng.Intn(2)
		pool := basePool(v.Profile)
		ts := make([]*Stack, 0, n)
		for i := 0; i < n; i++ {
			ts = append(ts, &Stack{
				ID:    fmt.Sprintf("type:%s:%d", key, i),
				Print: mutatePrint(pool[rng.Intn(len(pool))], rng),
			})
		}
		groupTypeStacks[key] = ts
		return ts
	}

	// Commodity stacks: widely shipped vendor-neutral builds (busybox-era
	// SDK toolchains) shared across many vendors. They are the main
	// source of cross-vendor fingerprint sharing outside SDKs. Vendors
	// draw from the pool matching their own stack era, so modern vendors
	// stay clean (Figure 11's 7 never-vulnerable vendors).
	commodityByProfile := map[SecurityProfile][]*Stack{}
	for i := 0; i < 90; i++ {
		profile := []SecurityProfile{ProfileModern, ProfileMixed, ProfileLegacy}[i%3]
		pool := basePool(profile)
		commodityByProfile[profile] = append(commodityByProfile[profile], &Stack{
			ID:    fmt.Sprintf("commodity:%d", i),
			Print: mutatePrint(pool[rng.Intn(len(pool))], rng),
		})
	}
	// Duo stacks: one stack per adjacent vendor pair (a shared ODM build
	// between two brands) — the source of Table 2's degree-2 bucket.
	duoStacks := map[string]*Stack{}
	for i := 0; i+1 < len(vendors); i += 2 {
		pool := basePool(vendors[i].Profile)
		s := &Stack{
			ID:    fmt.Sprintf("duo:%d", i/2),
			Print: mutatePrint(pool[rng.Intn(len(pool))], rng),
		}
		duoStacks[vendors[i].Name] = s
		duoStacks[vendors[i+1].Name] = s
	}

	// Exact-library stacks: pick spread-out corpus entries; mostly
	// curl+OpenSSL (the paper matched 14 curl+OpenSSL and 2 Mbed TLS).
	exactEntries := exactLibraryEntries()

	numUsers := int(float64(721)*cfg.Scale + 0.5)
	if numUsers < 1 {
		numUsers = 1
	}

	windowSec := cfg.End.Unix() - cfg.Start.Unix()
	helloTmpl := map[string][]byte{}
	deviceSeq := 0
	for _, v := range vendors {
		count := int(float64(v.Weight)*cfg.Scale + 0.5)
		if count < 1 {
			count = 1
		}
		cores := coreFor(v)
		// Device-type stacks, shared at stack-group granularity.
		typeStacks := map[string][]*Stack{}
		for _, typ := range v.Types {
			typeStacks[typ] = typeStacksFor(v, typ)
		}
		// Boutique vendors with tiny fleets rebuild firmware per device
		// batch: every device carries its own one-off stack, nothing is
		// shared — the DoC_device = 1 population of Figure 2.
		perDeviceUnique := v.Weight <= 12 && len(v.SDKs) == 0 && v.StackGroup == "" &&
			!v.AwfulSuites && v.SSL3Devices == 0 && !v.GREASE &&
			v.ExactLibDevices == 0 && !v.RC4First
		// Awful-suite stacks for the flagged vendors.
		var awfulStacks []*Stack
		if v.AwfulSuites {
			n := 1
			if v.Name == "Synology" {
				n = 6 // Synology's 22 unique vulnerable fingerprints come
				// from many awful variants across its devices
			}
			pool := basePool(ProfileLegacy)
			for i := 0; i < n; i++ {
				awfulStacks = append(awfulStacks, &Stack{
					ID:    fmt.Sprintf("awful:%s:%d", v.Name, i),
					Print: awfulPrint(pool[rng.Intn(len(pool))], v.Name, rng),
				})
			}
		}
		models := modelNames(v)
		uniqueRate := 0.0
		switch {
		case v.Weight >= 60:
			uniqueRate = 0.28
		case v.Weight >= 15:
			uniqueRate = 0.15
		}
		exactLeft := v.ExactLibDevices

		for d := 0; d < count; d++ {
			deviceSeq++
			typ := v.Types[rng.Intn(len(v.Types))]
			dev := &Device{
				ID:     fmt.Sprintf("dev-%05d", deviceSeq),
				Vendor: v.Name,
				Model:  models[rng.Intn(len(models))],
				Type:   typ,
				User:   fmt.Sprintf("user-%04d", rng.Intn(numUsers)),
			}
			// Core stack (by firmware version); boutique vendors mint a
			// one-off mutation per device instead.
			core := cores[rng.Intn(len(cores))]
			if perDeviceUnique {
				dev.Stacks = append(dev.Stacks, &Stack{
					ID:    "solo:" + dev.ID,
					Print: mutatePrint(core.Print, rng),
				})
			} else {
				dev.Stacks = append(dev.Stacks, core)
			}
			// Chromium stack for Android-derived vendors.
			if v.GREASE && rng.Float64() < 0.8 {
				seat := rng.Intn(3)
				dev.Stacks = append(dev.Stacks, &Stack{
					ID:    fmt.Sprintf("chromium:%d", seat),
					Print: chromiumPrint(seat),
				})
			}
			if !perDeviceUnique {
				// Type stack.
				if ts := typeStacks[typ]; len(ts) > 0 && rng.Float64() < 0.6 {
					dev.Stacks = append(dev.Stacks, ts[rng.Intn(len(ts))])
				}
				// Commodity toolchain stack (not for stack-group vendors,
				// whose sharing comes from the group pool itself).
				if v.StackGroup == "" && rng.Float64() < 0.5 {
					pool := commodityByProfile[v.Profile]
					dev.Stacks = append(dev.Stacks, pool[zipfIndex(rng, len(pool))])
				}
				// Duo (shared-ODM) stack; stack-group vendors already
				// share their whole pool.
				if duo := duoStacks[v.Name]; duo != nil && v.StackGroup == "" && rng.Float64() < 0.25 {
					dev.Stacks = append(dev.Stacks, duo)
				}
				// Per-device customization.
				if rng.Float64() < uniqueRate {
					dev.Stacks = append(dev.Stacks, &Stack{
						ID:    "unique:" + dev.ID,
						Print: mutatePrint(core.Print, rng),
					})
				}
			}
			// Awful stack for a minority of the vendor's devices.
			if len(awfulStacks) > 0 && rng.Float64() < 0.25 {
				dev.Stacks = append(dev.Stacks, awfulStacks[rng.Intn(len(awfulStacks))])
			}
			// Exact-library devices replace their core with a stock build.
			if exactLeft > 0 {
				exactLeft--
				e := exactEntries[rng.Intn(len(exactEntries))]
				dev.Stacks[0] = &Stack{
					ID:    "lib:" + e.Name(),
					Print: clonePrint(e.Print),
				}
			}
			// SDK stacks by membership and device type.
			for _, sdk := range v.SDKs {
				stack := ds.SDKStacks[sdk]
				if stack == nil {
					continue
				}
				if !sdkAppliesTo(sdk, typ) {
					continue
				}
				if rng.Float64() < 0.7 {
					dev.Stacks = append(dev.Stacks, stack)
				}
			}
			// Belkin-style vendors lead with RC4 in every proposed list:
			// transform every stack of the device (SDK-free vendors only).
			if v.RC4First {
				wrapped := make([]*Stack, len(dev.Stacks))
				for i, s := range dev.Stacks {
					wrapped[i] = &Stack{
						ID:    "rc4:" + s.ID,
						Print: rc4FirstPrint(s.Print),
						SNIs:  s.SNIs,
					}
				}
				dev.Stacks = wrapped
			}
			ds.Devices = append(ds.Devices, dev)

			// Emit ClientHello records.
			nRec := 3 + rng.Intn(6)
			ssl3Budget := 0
			if d < v.SSL3Devices {
				ssl3Budget = 1 + rng.Intn(2)
			}
			for rIdx := 0; rIdx < nRec; rIdx++ {
				stack := dev.Stacks[rng.Intn(len(dev.Stacks))]
				print := stack.Print
				stackID := stack.ID
				var sni string
				if len(stack.SNIs) > 0 {
					sni = stack.SNIs[zipfIndex(rng, len(stack.SNIs))]
				} else if v.OnlyPrivateCA || rng.Float64() < 0.8 || len(genericPool) == 0 {
					// OnlyPrivateCA vendors' devices speak exclusively to
					// the vendor cloud (Canary/Tuya/Obihai, Section 5.2).
					pool := ds.VendorFQDNs[v.Name]
					if len(pool) == 0 {
						continue
					}
					sni = pool[zipfIndex(rng, len(pool))]
				} else {
					sni = genericPool[zipfIndex(rng, len(genericPool))]
				}
				// SSL3 stragglers replace a record with an SSL3 hello
				// aimed at a vendor server (never an SDK-tied one).
				if ssl3Budget > 0 && rIdx == nRec-1 {
					ssl3Budget--
					print = ssl3Print()
					stackID = "ssl3:" + v.Name
					if pool := ds.VendorFQDNs[v.Name]; len(pool) > 0 {
						sni = pool[zipfIndex(rng, len(pool))]
					}
				}
				ts := cfg.Start.Add(time.Duration(rng.Int63n(windowSec)) * time.Second)
				raw := buildHelloCached(helloTmpl, stackID, print, sni, rng)
				ds.Records = append(ds.Records, Record{
					DeviceID: dev.ID,
					Vendor:   dev.Vendor,
					Model:    dev.Model,
					Type:     dev.Type,
					User:     dev.User,
					Time:     ts,
					SNI:      sni,
					StackID:  stackID,
					Raw:      raw,
				})
			}
		}
	}
	sort.Slice(ds.Records, func(i, j int) bool { return ds.Records[i].Time.Before(ds.Records[j].Time) })
	return ds
}

// helloRandomOff is where the 32-byte client random sits in a marshaled
// record: record header (5) + handshake header (4) + legacy version (2).
const helloRandomOff = 5 + 4 + 2

// buildHelloCached returns the marshaled hello for (stack, SNI), serializing
// the record once per distinct pair and patching only the client random per
// record. Records sharing a stack and SNI differ in nothing else, so the
// template bytes are reusable; the rng is consumed exactly as buildHello
// consumes it (one 32-byte read), keeping generation byte-identical.
func buildHelloCached(cache map[string][]byte, stackID string, print fingerprint.Fingerprint, sni string, rng *rand.Rand) []byte {
	key := stackID + "|" + sni
	tmpl, ok := cache[key]
	if !ok {
		tmpl = buildHelloTemplate(print, sni)
		cache[key] = tmpl
	}
	raw := make([]byte, len(tmpl))
	copy(raw, tmpl)
	rng.Read(raw[helloRandomOff : helloRandomOff+32])
	return raw
}

// buildHello marshals a real ClientHello record for a fingerprint + SNI.
func buildHello(print fingerprint.Fingerprint, sni string, rng *rand.Rand) []byte {
	raw := buildHelloTemplate(print, sni)
	rng.Read(raw[helloRandomOff : helloRandomOff+32])
	return raw
}

// buildHelloTemplate marshals the record with a zeroed client random.
func buildHelloTemplate(print fingerprint.Fingerprint, sni string) []byte {
	legacy := print.Version
	if legacy > tlswire.VersionTLS12 {
		legacy = tlswire.VersionTLS12
	}
	ch := &tlswire.ClientHello{
		LegacyVersion: legacy,
		CipherSuites:  print.CipherSuites,
	}
	hasServerName := false
	for _, e := range print.Extensions {
		if e == uint16(tlswire.ExtServerName) {
			hasServerName = true
			continue // added via SetSNI below to keep ordering stable
		}
		ch.Extensions = append(ch.Extensions, tlswire.Extension{Type: tlswire.ExtensionType(e)})
	}
	if hasServerName || sni != "" {
		// Prepend server_name to match its usual leading position.
		rest := ch.Extensions
		ch.Extensions = nil
		ch.SetSNI(sni)
		ch.Extensions = append(ch.Extensions, rest...)
	}
	raw, err := ch.Marshal()
	if err != nil {
		panic("dataset: marshal hello: " + err.Error())
	}
	return raw
}

// zipfIndex picks an index with a popularity skew (low indices frequent).
func zipfIndex(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Square a uniform draw: ~2x mass on the first third.
	f := rng.Float64()
	return int(f * f * float64(n))
}

// sdkAppliesTo gates SDK installation by device type.
func sdkAppliesTo(sdk, typ string) bool {
	switch sdk {
	case "netflix", "roku-platform", "roku-platform-legacy", "mgo":
		return typ == TypeTV || typ == TypeStreamer
	case "sonos", "pandora", "spotify", "cast4audio":
		return typ == TypeSpeaker || typ == TypeAVR || typ == TypeStreamer || typ == TypeHub
	case "arlo":
		return typ == TypeCamera || typ == TypeRouter
	case "hdhomerun":
		return typ == TypeStreamer
	case "googleapis-shared":
		return true
	default:
		return true
	}
}

// modelNames builds the vendor's model list (the 286-model diversity).
func modelNames(v VendorProfile) []string {
	perType := 1 + v.Weight/60
	if perType > 6 {
		perType = 6
	}
	var out []string
	for _, typ := range v.Types {
		for i := 1; i <= perType; i++ {
			out = append(out, fmt.Sprintf("%s %s v%d", v.Name, typ, i))
		}
	}
	return out
}

// exactLibraryEntries picks the corpus entries used verbatim by the
// exact-match device population: mostly curl+OpenSSL, a couple Mbed TLS.
func exactLibraryEntries() []fingerprint.LibraryEntry {
	var out []fingerprint.LibraryEntry
	curl := libcorpus.CurlOpenSSL()
	for i := 0; i < len(curl) && len(out) < 14; i += len(curl)/14 + 1 {
		out = append(out, curl[i])
	}
	mbed := libcorpus.MbedTLS()
	out = append(out, mbed[40], mbed[100])
	return out
}

// Models returns the number of distinct models in the population.
func (ds *Dataset) Models() int {
	set := map[string]bool{}
	for _, d := range ds.Devices {
		set[d.Model] = true
	}
	return len(set)
}

// Users returns the number of distinct users in the population.
func (ds *Dataset) Users() int {
	set := map[string]bool{}
	for _, d := range ds.Devices {
		set[d.User] = true
	}
	return len(set)
}

// SNIs returns the distinct SNIs observed, sorted.
func (ds *Dataset) SNIs() []string {
	set := map[string]bool{}
	for _, r := range ds.Records {
		if r.SNI != "" {
			set[r.SNI] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SNIsByMinUsers returns SNIs observed from at least minUsers distinct
// users (the paper filtered SNIs seen from <= 2 users).
func (ds *Dataset) SNIsByMinUsers(minUsers int) []string {
	users := map[string]map[string]bool{}
	for _, r := range ds.Records {
		if r.SNI == "" {
			continue
		}
		if users[r.SNI] == nil {
			users[r.SNI] = map[string]bool{}
		}
		users[r.SNI][r.User] = true
	}
	var out []string
	for sni, u := range users {
		if len(u) >= minUsers {
			out = append(out, sni)
		}
	}
	sort.Strings(out)
	return out
}
