package dataset

import "sort"

// FromRecords reconstructs a canonical Dataset from observed records
// alone — the ingest service's path from an accepted record stream back
// to a batch-equivalent dataset. Devices are rebuilt from the identity
// fields every record carries (no Stacks: nothing downstream of
// generation reads them), sorted by ID; records are sorted by
// (Time, DeviceID, StackID, SNI) and re-packed into a fresh columnar
// store. The result depends only on the *set* of records, never on
// arrival order, so two services that accepted the same records — or a
// service and a batch run — produce byte-identical reports.
func FromRecords(records []Record) *Dataset {
	ds := &Dataset{
		SDKStacks:   map[string]*Stack{},
		VendorFQDNs: map[string][]string{},
	}
	rows := append([]Record(nil), records...)
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.DeviceID != b.DeviceID {
			return a.DeviceID < b.DeviceID
		}
		if a.StackID != b.StackID {
			return a.StackID < b.StackID
		}
		return a.SNI < b.SNI
	})
	ds.Records = RecordsFromRows(rows)
	devByID := map[string]*Device{}
	for _, r := range rows {
		if devByID[r.DeviceID] != nil {
			continue
		}
		d := &Device{
			ID:     r.DeviceID,
			Vendor: r.Vendor,
			Model:  r.Model,
			Type:   r.Type,
			User:   r.User,
		}
		devByID[r.DeviceID] = d
		ds.Devices = append(ds.Devices, d)
	}
	sort.Slice(ds.Devices, func(i, j int) bool { return ds.Devices[i].ID < ds.Devices[j].ID })
	return ds
}
