package dataset

import (
	"testing"

	"repro/internal/ciphersuite"
	"repro/internal/fingerprint"
	"repro/internal/libcorpus"
	"repro/internal/tlswire"
)

// genOnce caches the paper-scale dataset across tests in this package.
var cached *Dataset

func paperScale(t testing.TB) *Dataset {
	t.Helper()
	if cached == nil {
		cached = Generate(DefaultConfig())
	}
	return cached
}

func TestPopulationScale(t *testing.T) {
	ds := paperScale(t)
	if n := len(ds.Devices); n < 1800 || n > 2400 {
		t.Errorf("devices %d, want ~2000", n)
	}
	if n := ds.Users(); n < 400 || n > 800 {
		t.Errorf("users %d, want ~721", n)
	}
	if n := ds.Models(); n < 150 || n > 400 {
		t.Errorf("models %d, want ~286", n)
	}
	if n := ds.Records.Len(); n < 8000 || n > 20000 {
		t.Errorf("records %d, want ~11k", n)
	}
	vendors := map[string]bool{}
	for _, d := range ds.Devices {
		vendors[d.Vendor] = true
	}
	if len(vendors) != 65 {
		t.Errorf("vendors %d want 65", len(vendors))
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 7, Scale: 0.05})
	b := Generate(Config{Seed: 7, Scale: 0.05})
	if a.Records.Len() != b.Records.Len() {
		t.Fatalf("record counts differ: %d vs %d", a.Records.Len(), b.Records.Len())
	}
	for i := 0; i < a.Records.Len(); i++ {
		if a.Records.At(i).SNI != b.Records.At(i).SNI || a.Records.At(i).DeviceID != b.Records.At(i).DeviceID {
			t.Fatalf("record %d differs", i)
		}
		if string(a.Records.At(i).Raw) != string(b.Records.At(i).Raw) {
			t.Fatalf("raw bytes differ at %d", i)
		}
	}
	c := Generate(Config{Seed: 8, Scale: 0.05})
	if a.Records.Len() == c.Records.Len() {
		same := true
		for i := 0; i < a.Records.Len(); i++ {
			if a.Records.At(i).SNI != c.Records.At(i).SNI {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestRecordsParseAndMatchFingerprints(t *testing.T) {
	ds := Generate(Config{Seed: 3, Scale: 0.1})
	for i, r := range ds.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if r.SNI != "" && ch.SNI() != r.SNI {
			t.Fatalf("record %d: SNI %q != %q", i, ch.SNI(), r.SNI)
		}
		if len(ch.CipherSuites) == 0 {
			t.Fatalf("record %d: empty suites", i)
		}
	}
}

func TestFingerprintDiversity(t *testing.T) {
	ds := paperScale(t)
	prints := map[string]bool{}
	for _, r := range ds.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatal(err)
		}
		prints[fingerprint.FromClientHello(ch).Key()] = true
	}
	// The paper extracted 903 unique fingerprints; target the same order.
	if n := len(prints); n < 400 || n > 1600 {
		t.Errorf("unique fingerprints %d, want hundreds (paper: 903)", n)
	}
}

func TestNoTLS13Proposals(t *testing.T) {
	ds := Generate(Config{Seed: 5, Scale: 0.15})
	for _, r := range ds.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatal(err)
		}
		if ch.EffectiveVersion() == tlswire.VersionTLS13 {
			t.Fatalf("TLS 1.3 proposed by %s (stack %s); paper observed none", r.DeviceID, r.StackID)
		}
	}
}

func TestSSL3Stragglers(t *testing.T) {
	ds := paperScale(t)
	devices := map[string]bool{}
	vendors := map[string]bool{}
	for _, r := range ds.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatal(err)
		}
		if ch.LegacyVersion == tlswire.VersionSSL30 {
			devices[r.DeviceID] = true
			vendors[r.Vendor] = true
		}
	}
	if len(devices) < 10 || len(devices) > 60 {
		t.Errorf("SSL3 devices %d, want ~26", len(devices))
	}
	for _, v := range []string{"Amazon", "Synology"} {
		if !vendors[v] {
			t.Errorf("vendor %s should have SSL3 stragglers", v)
		}
	}
}

func TestGREASEPopulation(t *testing.T) {
	ds := paperScale(t)
	devices := map[string]bool{}
	for _, r := range ds.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatal(err)
		}
		f := fingerprint.FromClientHello(ch)
		if f.HasGREASESuites() {
			devices[r.DeviceID] = true
		}
	}
	// Paper: 501 devices use GREASE in suites.
	if n := len(devices); n < 200 || n > 900 {
		t.Errorf("GREASE devices %d, want hundreds (paper: 501)", n)
	}
}

func TestSDKServerTied(t *testing.T) {
	ds := paperScale(t)
	// SDK-owned SNIs must only ever be visited with the SDK's fingerprint.
	sdkSNIs := map[string]string{} // sni -> sdk stack key
	for name, stack := range ds.SDKStacks {
		for _, sni := range stack.SNIs {
			sdkSNIs[sni] = name
		}
	}
	type visit struct {
		vendors map[string]bool
		prints  map[string]bool
	}
	visits := map[string]*visit{}
	for _, r := range ds.Records.Rows() {
		sdk, ok := sdkSNIs[r.SNI]
		if !ok {
			continue
		}
		ch, err := r.Hello()
		if err != nil {
			t.Fatal(err)
		}
		v := visits[sdk]
		if v == nil {
			v = &visit{vendors: map[string]bool{}, prints: map[string]bool{}}
			visits[sdk] = v
		}
		v.vendors[r.Vendor] = true
		v.prints[fingerprint.FromClientHello(ch).Key()] = true
	}
	multiVendor := 0
	for sdk, v := range visits {
		if len(v.prints) != 1 {
			t.Errorf("sdk %s: %d distinct fingerprints, want 1 (server-tied)", sdk, len(v.prints))
		}
		if len(v.vendors) >= 2 {
			multiVendor++
		}
	}
	if multiVendor < 4 {
		t.Errorf("only %d SDKs visited by 2+ vendors; want several (Table 5)", multiVendor)
	}
}

func TestVulnerableShare(t *testing.T) {
	ds := paperScale(t)
	prints := map[string]fingerprint.Fingerprint{}
	for _, r := range ds.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatal(err)
		}
		f := fingerprint.FromClientHello(ch)
		prints[f.Key()] = f
	}
	vuln, threeDES := 0, 0
	for _, f := range prints {
		classes := f.VulnClasses()
		if len(classes) > 0 {
			vuln++
		}
		for _, c := range classes {
			if c == ciphersuite.Vuln3DES {
				threeDES++
				break
			}
		}
	}
	total := len(prints)
	vr := float64(vuln) / float64(total)
	// Paper: 44.63% vulnerable, 41.64% with 3DES.
	if vr < 0.25 || vr > 0.75 {
		t.Errorf("vulnerable fingerprint share %.2f, want ~0.45", vr)
	}
	tr := float64(threeDES) / float64(total)
	if tr < 0.20 || tr > 0.70 {
		t.Errorf("3DES share %.2f, want ~0.42", tr)
	}
}

func TestExactLibraryMatches(t *testing.T) {
	ds := paperScale(t)
	matcher := libcorpus.NewMatcher()
	prints := map[string]fingerprint.Fingerprint{}
	for _, r := range ds.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatal(err)
		}
		f := fingerprint.FromClientHello(ch)
		prints[f.Key()] = f
	}
	matched := 0
	for _, f := range prints {
		if _, ok := matcher.MatchExact(f); ok {
			matched++
		}
	}
	rate := float64(matched) / float64(len(prints))
	// Paper: 2.55% of 903 fingerprints (23) matched.
	if matched < 5 {
		t.Errorf("only %d matched fingerprints; want >= 5", matched)
	}
	if rate > 0.15 {
		t.Errorf("match rate %.3f too high; the population should be ~98%% customized", rate)
	}
}

func TestBelkinRC4First(t *testing.T) {
	ds := paperScale(t)
	seen := false
	for _, r := range ds.Records.Rows() {
		if r.Vendor != "Belkin" {
			continue
		}
		seen = true
		ch, err := r.Hello()
		if err != nil {
			t.Fatal(err)
		}
		if ch.LegacyVersion == tlswire.VersionSSL30 {
			continue
		}
		s, _ := ciphersuite.Lookup(ch.CipherSuites[0])
		if s.VulnClass() != ciphersuite.VulnRC4 {
			t.Fatalf("Belkin record proposes %s first, want RC4", s.Name)
		}
	}
	if !seen {
		t.Fatal("no Belkin records")
	}
}

func TestSynologyAwful(t *testing.T) {
	ds := paperScale(t)
	found := false
	for _, r := range ds.Records.Rows() {
		if r.Vendor != "Synology" {
			continue
		}
		ch, err := r.Hello()
		if err != nil {
			t.Fatal(err)
		}
		f := fingerprint.FromClientHello(ch)
		for _, c := range f.VulnClasses() {
			if c == ciphersuite.VulnKRB5Export || c == ciphersuite.VulnAnonKex {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Synology should propose anon/KRB5_EXPORT suites")
	}
}

func TestSNIFilter(t *testing.T) {
	ds := paperScale(t)
	all := ds.SNIs()
	filtered := ds.SNIsByMinUsers(3)
	if len(filtered) >= len(all) {
		t.Fatalf("filter removed nothing: %d vs %d", len(filtered), len(all))
	}
	if len(filtered) < 200 {
		t.Fatalf("only %d SNIs survive the 3-user filter; want hundreds (paper: 1151)", len(filtered))
	}
	// Filtered set must be a subset.
	set := map[string]bool{}
	for _, s := range all {
		set[s] = true
	}
	for _, s := range filtered {
		if !set[s] {
			t.Fatalf("filtered SNI %q not in full set", s)
		}
	}
}

func TestFQDNsOf(t *testing.T) {
	fqdns := FQDNsOf(SLDSpec{Name: "example.com", FQDNs: 70})
	if len(fqdns) != 70 {
		t.Fatalf("got %d", len(fqdns))
	}
	seen := map[string]bool{}
	for _, f := range fqdns {
		if seen[f] {
			t.Fatalf("duplicate FQDN %s", f)
		}
		seen[f] = true
	}
	if fqdns[0] != "api.example.com" {
		t.Fatalf("first fqdn %s", fqdns[0])
	}
}

func TestVendorRegistry(t *testing.T) {
	vendors := Vendors()
	if len(vendors) != 65 {
		t.Fatalf("vendor count %d", len(vendors))
	}
	seenIdx := map[int]bool{}
	seenName := map[string]bool{}
	for _, v := range vendors {
		if v.Index < 1 || v.Index > 65 || seenIdx[v.Index] {
			t.Errorf("bad/duplicate index %d (%s)", v.Index, v.Name)
		}
		seenIdx[v.Index] = true
		if seenName[v.Name] {
			t.Errorf("duplicate vendor %s", v.Name)
		}
		seenName[v.Name] = true
		if v.Weight <= 0 || len(v.Types) == 0 || len(v.SLDs) == 0 {
			t.Errorf("vendor %s incomplete", v.Name)
		}
		if v.OnlyPrivateCA && !v.PrivateCA {
			t.Errorf("vendor %s OnlyPrivateCA without PrivateCA", v.Name)
		}
	}
	if w := TotalWeight(); w < 1900 || w > 2300 {
		t.Errorf("total weight %d, want ~2014", w)
	}
	// The paper's 16 private-CA vendors and 3 exclusive ones.
	private, only := 0, 0
	for _, v := range vendors {
		if v.PrivateCA {
			private++
		}
		if v.OnlyPrivateCA {
			only++
		}
	}
	if private < 14 || private > 18 {
		t.Errorf("private CA vendors %d, want 16", private)
	}
	if only != 3 {
		t.Errorf("exclusive private CA vendors %d, want 3 (Canary, Tuya, Obihai)", only)
	}
}

func TestScaleDown(t *testing.T) {
	ds := Generate(Config{Seed: 11, Scale: 0.05})
	if len(ds.Devices) < 60 || len(ds.Devices) > 200 {
		t.Fatalf("scaled devices %d", len(ds.Devices))
	}
	// Every vendor still has at least one device.
	vendors := map[string]bool{}
	for _, d := range ds.Devices {
		vendors[d.Vendor] = true
	}
	if len(vendors) != 65 {
		t.Fatalf("scaled vendors %d", len(vendors))
	}
}

func BenchmarkGeneratePaperScale(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := Config{Seed: 1, Scale: 0.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
