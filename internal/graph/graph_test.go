package graph

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func build() *Bipartite {
	g := New()
	// vendorA uses f1 (unique), f2 (shared with B).
	// vendorB uses f2, f3 (unique).
	// vendorC uses f4, f5, f6 (all unique).
	g.AddEdge("A", "f1")
	g.AddEdge("A", "f2")
	g.AddEdge("B", "f2")
	g.AddEdge("B", "f3")
	g.AddEdge("C", "f4")
	g.AddEdge("C", "f5")
	g.AddEdge("C", "f6")
	return g
}

func TestCounts(t *testing.T) {
	g := build()
	if g.NumLefts() != 3 || g.NumRights() != 6 || g.NumEdges() != 7 {
		t.Fatalf("counts %d %d %d", g.NumLefts(), g.NumRights(), g.NumEdges())
	}
	if !g.HasEdge("A", "f2") || g.HasEdge("A", "f3") {
		t.Fatal("edges wrong")
	}
	if g.RightDegree("f2") != 2 || g.RightDegree("f1") != 1 {
		t.Fatal("right degrees wrong")
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := build()
	g.AddEdge("A", "f1")
	g.AddEdge("A", "f1")
	if g.NumEdges() != 7 {
		t.Fatalf("edges %d after duplicate add", g.NumEdges())
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := build()
	d := g.DegreeDistribution()
	if d.Total != 6 {
		t.Fatalf("total %d", d.Total)
	}
	if math.Abs(d.Deg1-5.0/6.0) > 1e-9 {
		t.Errorf("deg1 %v", d.Deg1)
	}
	if math.Abs(d.Deg2-1.0/6.0) > 1e-9 {
		t.Errorf("deg2 %v", d.Deg2)
	}
	if d.Deg3to5 != 0 || d.DegOver5 != 0 {
		t.Errorf("high buckets nonzero")
	}
	// Hub fingerprint used by >5 vendors.
	for _, v := range []string{"V1", "V2", "V3", "V4", "V5", "V6"} {
		g.AddEdge(v, "hub")
	}
	d = g.DegreeDistribution()
	if d.DegOver5 == 0 {
		t.Error("hub not counted in >5 bucket")
	}
}

func TestDoC(t *testing.T) {
	g := build()
	if got := g.DoC("A"); got != 0.5 {
		t.Errorf("DoC(A)=%v want 0.5", got)
	}
	if got := g.DoC("C"); got != 1.0 {
		t.Errorf("DoC(C)=%v want 1", got)
	}
	if got := g.DoC("nonexistent"); got != 0 {
		t.Errorf("DoC(missing)=%v want 0", got)
	}
	all := g.DoCAll()
	if len(all) != 3 || all["B"] != 0.5 {
		t.Errorf("DoCAll %v", all)
	}
}

func TestJaccardAndSimilarPairs(t *testing.T) {
	g := build()
	if got := g.Jaccard("A", "B"); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("Jaccard(A,B)=%v", got)
	}
	if got := g.Jaccard("A", "C"); got != 0 {
		t.Errorf("Jaccard(A,C)=%v", got)
	}
	// Identical vendors.
	g.AddEdge("D", "f4")
	g.AddEdge("D", "f5")
	g.AddEdge("D", "f6")
	if got := g.Jaccard("C", "D"); got != 1 {
		t.Errorf("Jaccard(C,D)=%v", got)
	}
	pairs := g.SimilarPairs(0.2)
	if len(pairs) != 2 {
		t.Fatalf("pairs %v", pairs)
	}
	if pairs[0].A != "C" || pairs[0].B != "D" || pairs[0].Similarity != 1 {
		t.Errorf("top pair %v", pairs[0])
	}
	if pairs[1].A != "A" || pairs[1].B != "B" {
		t.Errorf("second pair %v", pairs[1])
	}
}

func TestCDF(t *testing.T) {
	xs, ys := CDF([]float64{0.5, 0.1, 1.0, 0.1})
	if len(xs) != 4 || xs[0] != 0.1 || xs[3] != 1.0 {
		t.Fatalf("xs %v", xs)
	}
	if ys[3] != 1.0 || ys[0] != 0.25 {
		t.Fatalf("ys %v", ys)
	}
	if xs, ys := CDF(nil); xs != nil || ys != nil {
		t.Fatal("empty CDF should be nil")
	}
	if got := FractionAtMost([]float64{0.2, 0.4, 0.9}, 0.5); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("FractionAtMost %v", got)
	}
}

func TestDot(t *testing.T) {
	g := build()
	dot := g.Dot(DotOptions{
		Name:       "fig1",
		RightColor: func(r string) string { return "#ff0000" },
		RightSize:  func(r string) float64 { return 0.3 },
		LeftLabel:  func(l string) string { return "vendor-" + l },
	})
	for _, want := range []string{"graph \"fig1\"", "vendor-A", "#ff0000", "\"L:A\" -- \"R:f1\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q", want)
		}
	}
	// Default options path.
	if !strings.Contains(g.Dot(DotOptions{}), "graph \"bipartite\"") {
		t.Error("default name missing")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := build()
	comps := g.ConnectedComponents()
	// {A,B,f1,f2,f3} and {C,f4,f5,f6}.
	if len(comps) != 2 {
		t.Fatalf("components %d", len(comps))
	}
	if len(comps[0]) != 5 || len(comps[1]) != 4 {
		t.Fatalf("sizes %d %d", len(comps[0]), len(comps[1]))
	}
	// Isolated left node forms its own component.
	g.AddLeft("lonely")
	comps = g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components with isolate %d", len(comps))
	}
}

// Property: DoC is always in [0,1].
func TestPropertyDoCBounds(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		g := New()
		for _, e := range edges {
			g.AddEdge(string(rune('A'+e[0]%16)), string(rune('a'+e[1]%16)))
		}
		for _, left := range g.Lefts() {
			d := g.DoC(left)
			if d < 0 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Jaccard symmetric, bounded, and reflexive on nodes with edges.
func TestPropertyJaccard(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		g := New()
		for _, e := range edges {
			g.AddEdge(string(rune('A'+e[0]%8)), string(rune('a'+e[1]%8)))
		}
		lefts := g.Lefts()
		for _, a := range lefts {
			if g.Jaccard(a, a) != 1 {
				return false
			}
			for _, b := range lefts {
				j1, j2 := g.Jaccard(a, b), g.Jaccard(b, a)
				if j1 != j2 || j1 < 0 || j1 > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: degree distribution fractions sum to 1 when nonempty.
func TestPropertyDegreeDistributionSums(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		g := New()
		for _, e := range edges {
			g.AddEdge(string(rune('A'+e[0]%16)), string(rune('a'+e[1]%16)))
		}
		d := g.DegreeDistribution()
		if d.Total == 0 {
			return d.Deg1 == 0 && d.Deg2 == 0 && d.Deg3to5 == 0 && d.DegOver5 == 0
		}
		sum := d.Deg1 + d.Deg2 + d.Deg3to5 + d.DegOver5
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDoCAll(b *testing.B) {
	g := New()
	for v := 0; v < 65; v++ {
		for f := 0; f < 30; f++ {
			g.AddEdge(string(rune('A'+v%26))+string(rune('0'+v/26)), string(rune(f*v%900)))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.DoCAll()
	}
}

func BenchmarkSimilarPairs(b *testing.B) {
	g := New()
	for v := 0; v < 65; v++ {
		for f := 0; f < 30; f++ {
			g.AddEdge(string(rune('A'+v%26))+string(rune('0'+v/26)), string(rune(f*v%900)))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.SimilarPairs(0.2)
	}
}

// TestSimilarPairsMatchesJaccard checks the sorted-slice fast path against
// brute-force per-pair Jaccard on a randomized graph.
func TestSimilarPairsMatchesJaccard(t *testing.T) {
	g := New()
	// Deterministic pseudo-random edge set over 20 vendors x 30 prints.
	x := uint32(12345)
	next := func(n int) int {
		x = x*1664525 + 1013904223
		return int(x>>16) % n
	}
	for i := 0; i < 200; i++ {
		g.AddEdge(string(rune('A'+next(20))), string(rune('a'+next(26))))
	}
	g.AddLeft("ZeroVendor") // edgeless node must be skipped, as before
	for _, threshold := range []float64{0, 0.1, 0.2, 0.5, 1} {
		got := g.SimilarPairs(threshold)
		// Brute-force reference with the public map-based Jaccard.
		var want []SimilarPair
		lefts := g.Lefts()
		for i := 0; i < len(lefts); i++ {
			for j := i + 1; j < len(lefts); j++ {
				if len(g.leftAdj[lefts[i]]) == 0 || len(g.leftAdj[lefts[j]]) == 0 {
					continue
				}
				if s := g.Jaccard(lefts[i], lefts[j]); s >= threshold {
					want = append(want, SimilarPair{A: lefts[i], B: lefts[j], Similarity: s})
				}
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Similarity != want[j].Similarity {
				return want[i].Similarity > want[j].Similarity
			}
			if want[i].A != want[j].A {
				return want[i].A < want[j].A
			}
			return want[i].B < want[j].B
		})
		if len(got) != len(want) {
			t.Fatalf("threshold %v: %d pairs, want %d", threshold, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("threshold %v pair %d: got %+v want %+v", threshold, i, got[i], want[i])
			}
		}
	}
}
