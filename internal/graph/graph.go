// Package graph implements the bipartite vendor–fingerprint graph and the
// customization/sharing metrics of Section 4: fingerprint degree (how many
// vendors use a fingerprint, Table 2), degree of customization across
// vendors (DoC_vendor, Figure 2), degree of customization across devices
// within a vendor (DoC and DoC_device, Figure 2 / Figure 10), pairwise
// vendor Jaccard similarity (Table 4), and DOT export for the graph
// figures (Figures 1, 3, 4).
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Bipartite is a bipartite graph between "left" nodes (vendors, devices,
// device types) and "right" nodes (fingerprints). Edges are unweighted;
// multiplicities are collapsed, matching the paper ("at least one device
// of the vendor uses the fingerprint").
type Bipartite struct {
	leftAdj  map[string]map[string]bool // left -> set of right
	rightAdj map[string]map[string]bool // right -> set of left
}

// New creates an empty bipartite graph.
func New() *Bipartite {
	return &Bipartite{
		leftAdj:  map[string]map[string]bool{},
		rightAdj: map[string]map[string]bool{},
	}
}

// AddEdge connects a left node to a right node.
func (g *Bipartite) AddEdge(left, right string) {
	if g.leftAdj[left] == nil {
		g.leftAdj[left] = map[string]bool{}
	}
	g.leftAdj[left][right] = true
	if g.rightAdj[right] == nil {
		g.rightAdj[right] = map[string]bool{}
	}
	g.rightAdj[right][left] = true
}

// AddLeft ensures a left node exists even without edges.
func (g *Bipartite) AddLeft(left string) {
	if g.leftAdj[left] == nil {
		g.leftAdj[left] = map[string]bool{}
	}
}

// Lefts returns the left node names, sorted.
func (g *Bipartite) Lefts() []string { return sortedKeys(g.leftAdj) }

// Rights returns the right node names, sorted.
func (g *Bipartite) Rights() []string { return sortedKeys(g.rightAdj) }

// NumLefts returns the number of left nodes.
func (g *Bipartite) NumLefts() int { return len(g.leftAdj) }

// NumRights returns the number of right nodes.
func (g *Bipartite) NumRights() int { return len(g.rightAdj) }

// NumEdges returns the number of distinct edges.
func (g *Bipartite) NumEdges() int {
	n := 0
	for _, set := range g.leftAdj {
		n += len(set)
	}
	return n
}

// RightDegree returns how many left nodes use the right node (for the
// vendor–fingerprint graph: the fingerprint's vendor degree of Table 2).
func (g *Bipartite) RightDegree(right string) int { return len(g.rightAdj[right]) }

// LeftNeighbors returns the right nodes adjacent to left, sorted.
func (g *Bipartite) LeftNeighbors(left string) []string { return sortedSet(g.leftAdj[left]) }

// RightNeighbors returns the left nodes adjacent to right, sorted.
func (g *Bipartite) RightNeighbors(right string) []string { return sortedSet(g.rightAdj[right]) }

// HasEdge reports whether the edge exists.
func (g *Bipartite) HasEdge(left, right string) bool { return g.leftAdj[left][right] }

func sortedKeys(m map[string]map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DegreeDistribution buckets right-node degrees as in Table 2:
// 1, 2, 3–5, >5. Returned as fractions of all right nodes.
type DegreeDistribution struct {
	Total    int
	Deg1     float64
	Deg2     float64
	Deg3to5  float64
	DegOver5 float64
}

// DegreeDistribution computes the Table 2 buckets over right nodes.
func (g *Bipartite) DegreeDistribution() DegreeDistribution {
	d := DegreeDistribution{Total: len(g.rightAdj)}
	if d.Total == 0 {
		return d
	}
	var c1, c2, c35, c5 int
	for _, lefts := range g.rightAdj {
		switch n := len(lefts); {
		case n == 1:
			c1++
		case n == 2:
			c2++
		case n <= 5:
			c35++
		default:
			c5++
		}
	}
	t := float64(d.Total)
	d.Deg1 = float64(c1) / t
	d.Deg2 = float64(c2) / t
	d.Deg3to5 = float64(c35) / t
	d.DegOver5 = float64(c5) / t
	return d
}

// DoC computes the degree of customization of one left node: the fraction
// of its adjacent right nodes used by no other left node. A left node with
// no edges has DoC 0 (nothing proposed, nothing customized).
func (g *Bipartite) DoC(left string) float64 {
	adj := g.leftAdj[left]
	if len(adj) == 0 {
		return 0
	}
	solely := 0
	for right := range adj {
		if len(g.rightAdj[right]) == 1 {
			solely++
		}
	}
	return float64(solely) / float64(len(adj))
}

// DoCAll returns the DoC of every left node.
func (g *Bipartite) DoCAll() map[string]float64 {
	out := make(map[string]float64, len(g.leftAdj))
	for left := range g.leftAdj {
		out[left] = g.DoC(left)
	}
	return out
}

// Jaccard returns the Jaccard similarity of two left nodes' right sets.
func (g *Bipartite) Jaccard(a, b string) float64 {
	sa, sb := g.leftAdj[a], g.leftAdj[b]
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for r := range sa {
		if sb[r] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// SimilarPair is one vendor tuple of Table 4.
type SimilarPair struct {
	A, B       string
	Similarity float64
}

// SimilarPairs returns all left-node pairs with Jaccard >= threshold,
// sorted by similarity descending then lexicographically. Right nodes
// are mapped to dense uint32 ids once, so the O(V^2) pair loop runs a
// merge-style Jaccard over integer slices — no string comparisons and
// no per-pair allocation. Id assignment order is irrelevant: Jaccard
// depends only on intersection and union cardinalities.
func (g *Bipartite) SimilarPairs(threshold float64) []SimilarPair {
	lefts := g.Lefts()
	rightID := make(map[string]uint32, len(g.rightAdj))
	adj := make([][]uint32, len(lefts))
	for i, l := range lefts {
		ns := make([]uint32, 0, len(g.leftAdj[l]))
		for r := range g.leftAdj[l] {
			id, ok := rightID[r]
			if !ok {
				id = uint32(len(rightID))
				rightID[r] = id
			}
			ns = append(ns, id)
		}
		sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
		adj[i] = ns
	}
	var out []SimilarPair
	for i := 0; i < len(lefts); i++ {
		if len(adj[i]) == 0 {
			continue
		}
		for j := i + 1; j < len(lefts); j++ {
			if len(adj[j]) == 0 {
				continue
			}
			s := jaccardSortedUint32(adj[i], adj[j])
			if s >= threshold {
				out = append(out, SimilarPair{A: lefts[i], B: lefts[j], Similarity: s})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// jaccardSortedUint32 computes Jaccard similarity of two sorted id sets
// by a single merge pass. Empty-vs-empty is 1, matching Jaccard.
func jaccardSortedUint32(a, b []uint32) float64 {
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// CDF returns the empirical CDF of the values: sorted x values and the
// cumulative fraction at each (used for Figure 2).
func CDF(values []float64) (xs, ys []float64) {
	if len(values) == 0 {
		return nil, nil
	}
	xs = append([]float64(nil), values...)
	sort.Float64s(xs)
	ys = make([]float64, len(xs))
	for i := range xs {
		ys[i] = float64(i+1) / float64(len(xs))
	}
	return xs, ys
}

// FractionAtMost returns the fraction of values <= x (reading a CDF).
func FractionAtMost(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// DotOptions controls DOT export.
type DotOptions struct {
	// Name of the graph.
	Name string
	// RightColor assigns a fill color per right node (fingerprint
	// security coloring in Figure 1); nil means default.
	RightColor func(right string) string
	// RightSize assigns a node size per right node; nil means default.
	RightSize func(right string) float64
	// LeftLabel rewrites left node labels (vendor index numbers); nil
	// means identity.
	LeftLabel func(left string) string
}

// Dot renders the bipartite graph in Graphviz DOT form, left nodes as
// boxes and right nodes as colored circles — the rendering behind
// Figures 1, 3, and 4.
func (g *Bipartite) Dot(opts DotOptions) string {
	name := opts.Name
	if name == "" {
		name = "bipartite"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  layout=neato;\n  overlap=false;\n", name)
	for _, left := range g.Lefts() {
		label := left
		if opts.LeftLabel != nil {
			label = opts.LeftLabel(left)
		}
		fmt.Fprintf(&b, "  %q [shape=box,label=%q];\n", "L:"+left, label)
	}
	for _, right := range g.Rights() {
		color := "#4878cf"
		if opts.RightColor != nil {
			color = opts.RightColor(right)
		}
		size := 0.15
		if opts.RightSize != nil {
			size = opts.RightSize(right)
		}
		fmt.Fprintf(&b, "  %q [shape=circle,label=\"\",style=filled,fillcolor=%q,width=%.2f];\n",
			"R:"+right, color, size)
	}
	for _, left := range g.Lefts() {
		for _, right := range g.LeftNeighbors(left) {
			fmt.Fprintf(&b, "  %q -- %q;\n", "L:"+left, "R:"+right)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ConnectedComponents returns the node sets of connected components
// (union of left and right nodes, prefixed "L:"/"R:"), largest first.
func (g *Bipartite) ConnectedComponents() [][]string {
	visited := map[string]bool{}
	var comps [][]string
	var stack []string
	for _, left := range g.Lefts() {
		start := "L:" + left
		if visited[start] {
			continue
		}
		var comp []string
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			node := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, node)
			var neighbors []string
			if strings.HasPrefix(node, "L:") {
				for _, r := range g.LeftNeighbors(node[2:]) {
					neighbors = append(neighbors, "R:"+r)
				}
			} else {
				for _, l := range g.RightNeighbors(node[2:]) {
					neighbors = append(neighbors, "L:"+l)
				}
			}
			for _, nb := range neighbors {
				if !visited[nb] {
					visited[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}
