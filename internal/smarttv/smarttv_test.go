package smarttv

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/pki"
	"repro/internal/simnet"
)

func world(t testing.TB) *simnet.World {
	t.Helper()
	ds := dataset.Generate(dataset.Config{Seed: 61, Scale: 0.4})
	return simnet.Build(simnet.Config{Seed: 6, SNIs: ds.SNIsByMinUsers(2)})
}

func TestGroupsPopulated(t *testing.T) {
	st := Run(world(t))
	counts := map[Group]int{}
	for _, o := range st.Observations {
		counts[o.Group]++
	}
	if counts[GroupAmazon] == 0 || counts[GroupRoku] == 0 {
		t.Fatalf("group counts %v", counts)
	}
	// amazonaws/amazonvideo must not appear in the Amazon group.
	for _, o := range st.Observations {
		if o.Group == GroupAmazon && excludedFromAmazon[o.SLD] {
			t.Errorf("excluded SLD %s in Amazon group", o.SLD)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	st := Run(world(t))
	rows := st.Figure7()
	if len(rows) == 0 {
		t.Fatal("no figure 7 rows")
	}
	var rokuPrivate *Figure7Row
	for i := range rows {
		if rows[i].Group == GroupRoku && rows[i].Issuer == "Roku" {
			rokuPrivate = &rows[i]
		}
		if rows[i].MinDays > rows[i].MaxDays {
			t.Fatalf("row %v min>max", rows[i])
		}
	}
	if rokuPrivate == nil {
		t.Fatal("no Roku-signed certificates in the Roku group")
	}
	// Roku signs its own certs with ~13-year validity, never in CT.
	if rokuPrivate.MaxDays < 4000 {
		t.Errorf("Roku-signed max validity %d days, want ~5000", rokuPrivate.MaxDays)
	}
	if rokuPrivate.InCT != 0 {
		t.Errorf("%d Roku-signed certs in CT, want 0", rokuPrivate.InCT)
	}
}

func TestTable17HasInvalidChains(t *testing.T) {
	st := Run(world(t))
	rows := st.Table17()
	if len(rows) == 0 {
		t.Fatal("no invalid/misconfigured chains in either group")
	}
	statuses := map[pki.ChainStatus]bool{}
	for _, r := range rows {
		if r.Status == pki.StatusValid {
			t.Fatal("valid status in Table 17")
		}
		statuses[r.Status] = true
	}
	if !statuses[pki.StatusUntrustedRoot] && !statuses[pki.StatusSelfSigned] {
		t.Error("expected untrusted-root/self-signed rows (Roku's own chains)")
	}
}

func TestKeyInfrastructure(t *testing.T) {
	st := Run(world(t))
	infra := st.KeyInfrastructure()
	if len(infra) != 2 {
		t.Fatalf("groups %d, want 2", len(infra))
	}
	byGroup := map[Group]VendorKeyInfrastructure{}
	for _, k := range infra {
		byGroup[k.Group] = k
	}
	roku := byGroup[GroupRoku]
	// Roku's own servers use a mixture of issuers with a large validity
	// variance, reaching ~5000 days (Section 6.1).
	if roku.MaxValidity < 4000 {
		t.Errorf("Roku max validity %d", roku.MaxValidity)
	}
	foundRoku := false
	for _, i := range roku.Issuers {
		if i == "Roku" {
			foundRoku = true
		}
	}
	if !foundRoku {
		t.Error("Roku missing from its own issuer list")
	}
	amazon := byGroup[GroupAmazon]
	if amazon.MaxValidity == 0 {
		t.Error("Amazon group empty")
	}
}

func BenchmarkRun(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(w)
	}
}
