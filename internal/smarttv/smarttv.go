// Package smarttv implements the Section 6.1 case study: certificate
// practice seen from Amazon and Roku smart TVs, using lab traffic
// captured directly from the devices. It reproduces Figure 7 (leaf
// certificates per issuer in the Amazon and Roku traffic groups) and
// Table 17 (servers presenting invalid or misconfigured chains).
package smarttv

import (
	"sort"
	"strings"

	"repro/internal/pki"
	"repro/internal/simnet"
)

// Group identifies a traffic group.
type Group string

// The two traffic groups of Section 6.1.
const (
	GroupAmazon Group = "Amazon"
	GroupRoku   Group = "Roku"
)

// Observation is one server seen in a smart TV's traffic.
type Observation struct {
	Group     Group
	SNI       string
	SLD       string
	IssuerOrg string
	// VendorManaged: the server belongs to the TV vendor (vs a
	// third-party channel/application).
	VendorManaged bool
	Status        pki.ChainStatus
	ValidityDays  int
	InCT          bool
}

// Study is the smart-TV case study state.
type Study struct {
	Observations []Observation
}

// excluded domains per Section 6.1: amazonaws.com and amazonvideo.com are
// visited by Roku devices too, so they are excluded from the Amazon group.
var excludedFromAmazon = map[string]bool{
	"amazonaws.com":   true,
	"amazonvideo.com": true,
}

// Run captures both groups from the world. The groups contain the
// vendor's own servers plus third-party channel servers (Netflix etc.).
func Run(w *simnet.World) *Study {
	st := &Study{}
	for sni, srv := range w.Servers {
		if srv.Unreachable {
			continue
		}
		var group Group
		vendorManaged := false
		switch {
		case srv.OwnerVendor == "Amazon" && !excludedFromAmazon[srv.SLD]:
			group, vendorManaged = GroupAmazon, true
		case srv.OwnerVendor == "Roku":
			group, vendorManaged = GroupRoku, true
		case strings.HasSuffix(srv.SLD, "netflix.com") || srv.SLD == "nflxvideo.net":
			// Third-party channels appear in both groups; attribute by
			// hash for a deterministic split.
			group = GroupRoku
			if len(sni)%2 == 0 {
				group = GroupAmazon
			}
		default:
			continue
		}
		chain, err := w.ProbeFast(sni, simnet.VantageNewYork)
		if err != nil {
			continue
		}
		res := w.Validator.Validate(chain, sni, w.ProbeTime)
		leaf := chain.Leaf()
		st.Observations = append(st.Observations, Observation{
			Group:         group,
			SNI:           sni,
			SLD:           srv.SLD,
			IssuerOrg:     srv.IssuerOrg,
			VendorManaged: vendorManaged,
			Status:        res.Status,
			ValidityDays:  int(leaf.NotAfter.Sub(leaf.NotBefore).Hours() / 24),
			InCT:          srv.InCT,
		})
	}
	sort.Slice(st.Observations, func(i, j int) bool {
		if st.Observations[i].Group != st.Observations[j].Group {
			return st.Observations[i].Group < st.Observations[j].Group
		}
		return st.Observations[i].SNI < st.Observations[j].SNI
	})
	return st
}

// Figure7Row summarizes leaf certificates per (group, issuer).
type Figure7Row struct {
	Group   Group
	Issuer  string
	Count   int
	MinDays int
	MaxDays int
	InCT    int
	NotInCT int
}

// Figure7 aggregates validity and CT status per issuer within each group.
func (st *Study) Figure7() []Figure7Row {
	type key struct {
		g Group
		i string
	}
	rows := map[key]*Figure7Row{}
	for _, o := range st.Observations {
		k := key{o.Group, o.IssuerOrg}
		r := rows[k]
		if r == nil {
			r = &Figure7Row{Group: o.Group, Issuer: o.IssuerOrg, MinDays: o.ValidityDays, MaxDays: o.ValidityDays}
			rows[k] = r
		}
		r.Count++
		if o.ValidityDays < r.MinDays {
			r.MinDays = o.ValidityDays
		}
		if o.ValidityDays > r.MaxDays {
			r.MaxDays = o.ValidityDays
		}
		if o.InCT {
			r.InCT++
		} else {
			r.NotInCT++
		}
	}
	out := make([]Figure7Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].Issuer < out[j].Issuer
	})
	return out
}

// Table17Row lists domains with an invalid or misconfigured chain.
type Table17Row struct {
	Group  Group
	Status pki.ChainStatus
	SLD    string
	FQDNs  int
}

// Table17 groups invalid/misconfigured chains per traffic group.
func (st *Study) Table17() []Table17Row {
	type key struct {
		g   Group
		st  pki.ChainStatus
		sld string
	}
	counts := map[key]int{}
	for _, o := range st.Observations {
		if o.Status == pki.StatusValid {
			continue
		}
		counts[key{o.Group, o.Status, o.SLD}]++
	}
	out := make([]Table17Row, 0, len(counts))
	for k, n := range counts {
		out = append(out, Table17Row{Group: k.g, Status: k.st, SLD: k.sld, FQDNs: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		if out[i].Status != out[j].Status {
			return out[i].Status < out[j].Status
		}
		return out[i].SLD < out[j].SLD
	})
	return out
}

// VendorKeyInfrastructure summarizes the Section 6.1 finding: which
// issuers each vendor's own servers use, their validity spread, and CT.
type VendorKeyInfrastructure struct {
	Group       Group
	Issuers     []string
	MinValidity int
	MaxValidity int
	AnyInCT     bool
	AllInCT     bool
}

// KeyInfrastructure computes the per-group vendor-managed summary.
func (st *Study) KeyInfrastructure() []VendorKeyInfrastructure {
	groups := map[Group]*VendorKeyInfrastructure{}
	issuers := map[Group]map[string]bool{}
	for _, o := range st.Observations {
		if !o.VendorManaged {
			continue
		}
		g := groups[o.Group]
		if g == nil {
			g = &VendorKeyInfrastructure{Group: o.Group, MinValidity: o.ValidityDays, MaxValidity: o.ValidityDays, AllInCT: true}
			groups[o.Group] = g
			issuers[o.Group] = map[string]bool{}
		}
		issuers[o.Group][o.IssuerOrg] = true
		if o.ValidityDays < g.MinValidity {
			g.MinValidity = o.ValidityDays
		}
		if o.ValidityDays > g.MaxValidity {
			g.MaxValidity = o.ValidityDays
		}
		g.AnyInCT = g.AnyInCT || o.InCT
		g.AllInCT = g.AllInCT && o.InCT
	}
	var out []VendorKeyInfrastructure
	for g, v := range groups {
		for i := range issuers[g] {
			v.Issuers = append(v.Issuers, i)
		}
		sort.Strings(v.Issuers)
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}
