package lint

import (
	"go/ast"
	"go/types"
)

// Ctxfirst returns the analyzer enforcing context discipline: a
// function that takes a context.Context must take it as its first
// parameter, and must pass that context down rather than minting a
// fresh context.Background()/context.TODO() mid-call (which silently
// detaches the callee from cancellation and deadlines). The one
// allowed shape is the nil-guard that backfills the function's own
// context parameter:
//
//	if ctx == nil {
//		ctx = context.Background()
//	}
func Ctxfirst() *Analyzer {
	a := &Analyzer{
		Name: "ctxfirst",
		Doc: "context.Context parameters must come first, and functions that already " +
			"have a context must pass it down instead of calling context.Background() " +
			"or context.TODO()",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Type.Params == nil {
					continue
				}
				checkCtxFunc(pass, fd)
			}
		}
		return nil
	}
	return a
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	// Find the context parameter, flagging it if it is not first.
	var ctxParams []types.Object
	flat := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && isContextType(tv.Type) {
			if flat != 0 {
				pass.Reportf(field.Type.Pos(),
					"context.Context must be the first parameter of %s", fd.Name.Name)
			}
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					ctxParams = append(ctxParams, obj)
				}
			}
		}
		flat += n
	}
	if len(ctxParams) == 0 || fd.Body == nil {
		return
	}

	// The nil-guard `ctx = context.Background()` assigning to the
	// context parameter itself is the documented compatibility shape.
	allowed := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		for _, p := range ctxParams {
			if obj == p {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isFreshContextCall(pass, call) {
					allowed[call] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Closures often outlive the call (goroutines, servers);
			// judging them needs escape knowledge the analyzer lacks.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isFreshContextCall(pass, call) || allowed[call] {
			return true
		}
		fn := funcOf(pass.TypesInfo, call.Fun)
		pass.Reportf(call.Pos(),
			"%s has a context parameter; pass it down instead of context.%s()",
			fd.Name.Name, fn.Name())
		return true
	})
}

func isFreshContextCall(pass *Pass, call *ast.CallExpr) bool {
	fn := funcOf(pass.TypesInfo, call.Fun)
	return pkgFunc(fn, "context", "Background") || pkgFunc(fn, "context", "TODO")
}
