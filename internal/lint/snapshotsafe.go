package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/cfg"
)

// Snapshotsafe returns the flow-sensitive analyzer guarding the
// daemon's epoch-snapshot invariant: a value published through
// atomic.Pointer.Store — or obtained from atomic.Pointer.Load — is
// shared with lock-free readers and must never be written through
// again. The epoch pattern is copy-on-write: build a fresh value,
// Store it, and from that moment treat it as immutable.
//
// The analysis tracks, per function, the set of variables that refer to
// a published value (the Store argument, any Load result, and plain
// aliases of either) and flags assignments through them: field writes,
// element writes, and compound assignments. Rebinding the variable to a
// fresh value clears the taint. Writes hidden behind method calls on a
// published value are beyond this analysis — the reviewer's job, not
// the linter's.
func Snapshotsafe() *Analyzer {
	a := &Analyzer{
		Name: "snapshotsafe",
		Doc: "flags writes through values published via atomic.Pointer.Store or read " +
			"via atomic.Pointer.Load; published snapshots are immutable — copy, " +
			"mutate, re-Store",
	}
	a.Run = func(pass *Pass) error {
		noRet := noReturnPredicate(pass)
		for _, fb := range functionBodies(pass) {
			checkSnapshotSafe(pass, fb, noRet)
		}
		return nil
	}
	return a
}

// pubFact maps variables referring to published values to the position
// where they became published.
type pubFact map[*types.Var]token.Pos

func (f pubFact) clone() pubFact {
	out := make(pubFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// atomicPtrMethod resolves call to atomic.Pointer[T].Store / Load /
// Swap and returns the method name.
func atomicPtrMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	for _, m := range [...]string{"Store", "Load", "Swap"} {
		if _, ok := methodOn(info, call, "sync/atomic", "Pointer", m); ok {
			return m, true
		}
	}
	return "", false
}

func checkSnapshotSafe(pass *Pass, fb funcBody, noRet func(*ast.CallExpr) bool) {
	g := buildGraph(pass, fb.body, noRet)
	info := pass.TypesInfo

	type violation struct {
		pos token.Pos
		v   *types.Var
	}
	var violations []violation
	seen := map[token.Pos]bool{}
	flag := func(pos token.Pos, v *types.Var) {
		if !seen[pos] {
			seen[pos] = true
			violations = append(violations, violation{pos, v})
		}
	}

	// writeCheck flags an lvalue that writes through a published var:
	// a selector, index or star chain rooted at it. Writing the bare
	// var itself is a rebind, not a write-through.
	writeCheck := func(fact pubFact, lhs ast.Expr, report bool) {
		if _, isIdent := lhs.(*ast.Ident); isIdent {
			return
		}
		if v := rootVar(info, lhs); v != nil {
			if _, published := fact[v]; published && report {
				flag(lhs.Pos(), v)
			}
		}
	}

	transfer := func(b *cfg.Block, fact pubFact, report bool) pubFact {
		out := fact.clone()
		for _, n := range b.Nodes {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lh := range s.Lhs {
					writeCheck(out, lh, report)
				}
				// Publication and aliasing, position-aligned when the
				// counts match.
				if len(s.Lhs) == len(s.Rhs) {
					for i, rh := range s.Rhs {
						lv := objVar(info, s.Lhs[i])
						switch r := rh.(type) {
						case *ast.CallExpr:
							if m, ok := atomicPtrMethod(info, r); ok && (m == "Load" || m == "Swap") && lv != nil {
								out[lv] = r.Pos()
								continue
							}
							if lv != nil {
								delete(out, lv) // fresh value: taint cleared
							}
						case *ast.Ident:
							if rv := objVar(info, r); rv != nil {
								if pos, pub := out[rv]; pub && lv != nil {
									out[lv] = pos
									continue
								}
							}
							if lv != nil {
								delete(out, lv)
							}
						default:
							if lv != nil {
								delete(out, lv)
							}
						}
					}
				}
			case *ast.IncDecStmt:
				writeCheck(out, s.X, report)
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if m, ok := atomicPtrMethod(info, call); ok && m == "Store" && len(call.Args) == 1 {
						if v := objVar(info, call.Args[0]); v != nil {
							out[v] = call.Pos()
						}
					}
				}
			}
		}
		return out
	}

	in := cfg.Forward(g, cfg.Problem{
		Entry: pubFact{},
		Transfer: func(b *cfg.Block, in any) any {
			return transfer(b, in.(pubFact), false)
		},
		Join: func(a, b any) any {
			fa, fb := a.(pubFact), b.(pubFact)
			out := fa.clone()
			for v, p := range fb {
				if cur, ok := out[v]; !ok || p < cur {
					out[v] = p
				}
			}
			return out
		},
		Equal: func(a, b any) bool {
			fa, fb := a.(pubFact), b.(pubFact)
			if len(fa) != len(fb) {
				return false
			}
			for v, p := range fa {
				if q, ok := fb[v]; !ok || p != q {
					return false
				}
			}
			return true
		},
	})

	for _, b := range g.Blocks {
		fact, ok := in[b]
		if !ok || !b.Live {
			continue
		}
		transfer(b, fact.(pubFact), true)
	}
	sort.Slice(violations, func(i, j int) bool { return violations[i].pos < violations[j].pos })
	for _, v := range violations {
		pass.Reportf(v.pos,
			"write through %s after it was published via atomic.Pointer (Store/Load); published snapshots are immutable — copy, mutate, re-Store", v.v.Name())
	}
}
