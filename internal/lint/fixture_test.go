package lint

// fixture_test.go is the analysistest analogue for the hermetic
// framework: it loads a testdata/src package, runs one analyzer, and
// compares the diagnostics against the fixture's trailing
//
//	// want `regex`
//
// comments line by line. Every diagnostic must be wanted and every
// want must fire, so a fixture with wants fails the test the moment
// its analyzer stops reporting.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// fixtureEnv shares one file set and one source importer across every
// loadFixture call, so the standard library packages the fixtures
// import (net, os, sync, ...) are type-checked once per test process
// instead of once per fixture.
var fixtureEnv struct {
	once sync.Once
	fset *token.FileSet
	imp  types.Importer
}

func fixtureImporter() (*token.FileSet, types.Importer) {
	fixtureEnv.once.Do(func() {
		disableCgo()
		fixtureEnv.fset = token.NewFileSet()
		fixtureEnv.imp = importer.ForCompiler(fixtureEnv.fset, "source", nil)
	})
	return fixtureEnv.fset, fixtureEnv.imp
}

// loadFixture parses and type-checks the fixture package at
// testdata/src/<rel>, using <rel> as the import path so analyzers with
// path-based policies (noclock's internal/obs exemption) see realistic
// paths.
func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset, imp := fixtureImporter()
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(rel, fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", rel, err)
	}
	return &Package{Path: rel, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
}

// wantKey identifies one expectation site.
type wantKey struct {
	file string
	line int
}

// wantEntry is one expectation; hit marks it matched.
type wantEntry struct {
	re  *regexp.Regexp
	hit bool
}

// collectWants extracts the fixture's expectations.
func collectWants(t *testing.T, pkg *Package) map[wantKey][]*wantEntry {
	t.Helper()
	wants := map[wantKey][]*wantEntry{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], &wantEntry{re: re})
			}
		}
	}
	return wants
}

// runFixture checks one analyzer against one fixture package.
func runFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	diags, err := Check([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, w := range wants[k] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: no diagnostic matched %q", k.file, k.line, w.re)
			}
		}
	}
}
