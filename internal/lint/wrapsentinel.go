package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Wrapsentinel returns the analyzer enforcing Go 1.13 error
// discipline around the repo's typed sentinels (ErrBadWorkers,
// ErrTruncated, ErrCircuitOpen, ...): comparisons against a sentinel
// must go through errors.Is — the probe engine and simnet wrap
// sentinels with context, so == silently stops matching — and
// fmt.Errorf must wrap error operands with %w, not flatten them with
// %v/%s, or errors.Is/As stop seeing the chain.
func Wrapsentinel() *Analyzer {
	a := &Analyzer{
		Name: "wrapsentinel",
		Doc: "sentinel errors (ErrFoo) must be compared with errors.Is, not ==/!=, and " +
			"error values passed to fmt.Errorf must use the %w verb so the chain stays " +
			"inspectable",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					checkSentinelCompare(pass, n)
				case *ast.CallExpr:
					checkErrorfWrap(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// sentinelOf returns the package-level error variable named Err...
// that e refers to, or nil.
func sentinelOf(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil // only package-level sentinels
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	r, size := utf8.DecodeRuneInString(v.Name()[len("Err"):])
	if size == 0 || !unicode.IsUpper(r) {
		return nil
	}
	return v
}

func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if v := sentinelOf(pass, side); v != nil && isErrorType(v.Type()) {
			pass.Reportf(be.OpPos,
				"sentinel %s compared with %s; wrapped errors never match, use errors.Is",
				v.Name(), be.Op)
			return
		}
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error value
// through %v or %s instead of %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := funcOf(pass.TypesInfo, call.Fun)
	if !pkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			return // vet owns arity complaints
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		argTV, ok := pass.TypesInfo.Types[call.Args[argIdx]]
		if !ok || argTV.Type == nil || !isErrorType(argTV.Type) {
			continue
		}
		pass.Reportf(call.Args[argIdx].Pos(),
			"error formatted with %%%c loses the chain for errors.Is/As; wrap it with %%w", verb)
	}
}

// formatVerbs extracts the verb letters of a fmt format string in
// argument order. Explicit argument indexes (%[1]v) make the mapping
// positional-index-free, so the scan gives up on them.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	flagLoop:
		for i < len(format) {
			switch format[i] {
			case '+', '-', '#', ' ', '0', '.',
				'1', '2', '3', '4', '5', '6', '7', '8', '9':
				i++
			case '[', '*':
				// Explicit argument indexes and *-widths shift the
				// verb/argument mapping; give up rather than misreport.
				return nil
			default:
				break flagLoop
			}
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, rune(format[i]))
	}
	return verbs
}
