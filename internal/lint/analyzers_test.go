package lint

import "testing"

// Each analyzer runs against its fixture package(s); the fixtures
// contain positive hits (which fail the test if the analyzer goes
// silent), clean shapes, and //lint:allow suppressions.

func TestNoclockFixture(t *testing.T) {
	runFixture(t, Noclock(), "noclock")
}

func TestNoclockObsExemption(t *testing.T) {
	// A package path ending internal/obs may read the wall clock; the
	// fixture has time.Now/time.Since and zero wants.
	runFixture(t, Noclock(), "noclock/internal/obs")
}

func TestNoclockClockFileExemption(t *testing.T) {
	// Only clock.go inside internal/probe is exempt; engine.go in the
	// same package is still flagged.
	runFixture(t, Noclock(), "noclock/internal/probe")
}

func TestSeededrandFixture(t *testing.T) {
	runFixture(t, Seededrand(), "seededrand")
}

func TestSortedrangeFixture(t *testing.T) {
	runFixture(t, Sortedrange(), "sortedrange")
}

func TestCtxfirstFixture(t *testing.T) {
	runFixture(t, Ctxfirst(), "ctxfirst")
}

func TestWrapsentinelFixture(t *testing.T) {
	runFixture(t, Wrapsentinel(), "wrapsentinel")
}

func TestHotkeyFixture(t *testing.T) {
	runFixture(t, Hotkey(), "hotkey")
}

func TestLockbalanceFixture(t *testing.T) {
	runFixture(t, Lockbalance(), "lockbalance")
}

func TestGoleakFixture(t *testing.T) {
	runFixture(t, Goleak(), "goleak")
}

func TestDefercloseFixture(t *testing.T) {
	runFixture(t, Deferclose(), "deferclose")
}

func TestSnapshotsafeFixture(t *testing.T) {
	runFixture(t, Snapshotsafe(), "snapshotsafe")
}

func TestSuiteNamesUniqueAndStable(t *testing.T) {
	want := []string{
		"noclock", "seededrand", "sortedrange", "ctxfirst", "wrapsentinel", "hotkey",
		"lockbalance", "goleak", "deferclose", "snapshotsafe",
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no Doc", a.Name)
		}
	}
}
