package lint

import (
	"go/ast"
	"go/types"
)

// writerMethods are method names that emit output in call order; a
// map-range body reaching one of these writes in nondeterministic
// order.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteRow":    true,
	"WriteAll":    true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
}

// sortCalls are the package-level functions that establish a
// deterministic order over a slice.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// Sortedrange returns the analyzer that catches the exact bug class
// fixed by hand in PR 3's VulnStats: ranging over a map and letting
// the iteration order escape into output. Two shapes are flagged:
//
//   - the loop body writes directly (fmt.Fprintf, Write, WriteString,
//     WriteRow, ...): the output is ordered by map iteration;
//   - the loop body appends to a slice declared outside the loop, and
//     no sort.*/slices.Sort* call mentioning that slice follows in
//     the function: the collected elements keep map order.
//
// Sorting the slice afterwards, building another map, or counting are
// all clean. Deliberately order-free aggregation (a commutative merge,
// a sum) that still trips the heuristic takes a //lint:allow
// sortedrange annotation with the reason.
func Sortedrange() *Analyzer {
	a := &Analyzer{
		Name: "sortedrange",
		Doc: "flags range-over-map loops whose iteration order escapes — direct writes " +
			"from the loop body, or appends to an outer slice that is never sorted " +
			"afterwards; sort the keys first or sort the result",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFuncRanges(pass, fd)
			}
		}
		return nil
	}
	return a
}

func checkFuncRanges(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fd, rs)
		return true
	})
}

func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	// Shape 1: the body writes output directly.
	var writeCall *ast.CallExpr
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if writeCall != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := funcOf(pass.TypesInfo, call.Fun); fn != nil && writerMethods[fn.Name()] {
			writeCall = call
			return false
		}
		return true
	})
	if writeCall != nil {
		pass.Reportf(rs.For,
			"range over map writes output in map iteration order; iterate sorted keys instead")
		return
	}

	// Shape 2: the body appends to outer slices; require a later sort.
	appended := map[*types.Var]ast.Expr{} // slice var -> first append site
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := pass.TypesInfo.Uses[lhs].(*types.Var)
			if !ok || v.Pos() > rs.Pos() {
				continue // declared inside the loop: local scratch
			}
			if _, seen := appended[v]; !seen {
				appended[v] = as.Lhs[i]
			}
		}
		return true
	})
	for v, site := range appended {
		if v.Parent() == v.Pkg().Scope() {
			continue // package-level aggregation: beyond a local heuristic
		}
		if sortedAfter(pass, fd, rs, v) {
			continue
		}
		pass.Reportf(site.Pos(),
			"%s collects map-range elements and is never sorted afterwards in %s; "+
				"sort it (or the map keys) before it reaches output",
			v.Name(), fd.Name.Name)
	}
}

// sortedAfter reports whether a sort.*/slices.Sort* call mentioning v
// appears in fd after the range statement.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := funcOf(pass.TypesInfo, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		names := sortCalls[fn.Pkg().Path()]
		if names == nil || !names[fn.Name()] || !mentionsVar(pass, call, v) {
			return true
		}
		found = true
		return false
	})
	return found
}

// mentionsVar reports whether v appears anywhere in the call's
// arguments (covers sort.Strings(keys), sort.Slice(rows, ...),
// sort.Sort(byName(rows))).
func mentionsVar(pass *Pass, call *ast.CallExpr, v *types.Var) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}
