package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// writerMethods are method names that emit output in call order; a
// map-range body reaching one of these writes in nondeterministic
// order.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteRow":    true,
	"WriteAll":    true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
}

// sortCalls are the package-level functions that establish a
// deterministic order over a slice.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// Sortedrange returns the analyzer that catches the exact bug class
// fixed by hand in PR 3's VulnStats: ranging over a map and letting
// the iteration order escape into output. Within one function, two
// shapes are flagged:
//
//   - the loop body writes directly (fmt.Fprintf, Write, WriteString,
//     WriteRow, ...): the output is ordered by map iteration;
//   - the loop body appends to a slice declared outside the loop, and
//     no sort.*/slices.Sort* call mentioning that slice follows in
//     the function: the collected elements keep map order.
//
// Since PR 9 the taint also flows through one level of intra-package
// calls: a function that returns a map-range-collected slice unsorted
// is summarized, and each caller is checked — sorting the result is
// clean, handing it to a writer (directly, through a range loop, or
// via a sink parameter that another local function writes) is flagged
// at the caller. When no caller provably sorts it — or the function is
// exported, so unseen callers exist — the collection site itself is
// flagged, which is exactly what the local analyzer did before.
//
// Sorting the slice afterwards, building another map, or counting are
// all clean. Deliberately order-free aggregation (a commutative merge,
// a sum) that still trips the heuristic takes a //lint:allow
// sortedrange annotation with the reason.
func Sortedrange() *Analyzer {
	a := &Analyzer{
		Name: "sortedrange",
		Doc: "flags range-over-map loops whose iteration order escapes — direct writes " +
			"from the loop body, appends to an outer slice that is never sorted " +
			"afterwards, or (one call level deep) unsorted collected slices returned " +
			"to callers that write them",
	}
	a.Run = func(pass *Pass) error {
		s := &srState{
			pass:    pass,
			decls:   declaredFuncs(pass),
			taint:   map[*types.Func]*srTaint{},
			sinks:   map[*types.Func][]int{},
			sorters: map[*types.Func][]int{},
		}
		// Pass 1: local shapes, plus tainted-result and sink-parameter
		// summaries.
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				s.analyzeLocal(fd)
			}
		}
		// Pass 2: push taint through call sites.
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				s.analyzeCallers(fd)
			}
		}
		// Pass 3: taints never proven sorted fall back to the
		// collection site.
		s.reportResidualTaints()
		return nil
	}
	return a
}

// srTaint summarizes a function returning a map-range-collected slice
// that the function itself never sorts.
type srTaint struct {
	fn      *types.Func
	varName string
	site    token.Pos // the append site inside the map range
	// every call site must end in one of: sorted, reported-at-caller.
	// Any other use leaves the taint unproven.
	calls    int
	resolved int
}

type srState struct {
	pass    *Pass
	decls   map[*types.Func]*ast.FuncDecl
	taint   map[*types.Func]*srTaint
	sinks   map[*types.Func][]int // param indexes written unsorted
	sorters map[*types.Func][]int // param indexes the callee sorts
}

func (s *srState) analyzeLocal(fd *ast.FuncDecl) {
	pass := s.pass
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		s.checkMapRange(fd, rs)
		return true
	})
	s.collectSinkParams(fd)
}

func (s *srState) checkMapRange(fd *ast.FuncDecl, rs *ast.RangeStmt) {
	pass := s.pass
	// Shape 1: the body writes output directly.
	var writeCall *ast.CallExpr
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if writeCall != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := funcOf(pass.TypesInfo, call.Fun); fn != nil && writerMethods[fn.Name()] {
			writeCall = call
			return false
		}
		return true
	})
	if writeCall != nil {
		pass.Reportf(rs.For,
			"range over map writes output in map iteration order; iterate sorted keys instead")
		return
	}

	// Shape 2: the body appends to outer slices; require a later sort.
	appended := map[*types.Var]ast.Expr{} // slice var -> first append site
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := pass.TypesInfo.Uses[lhs].(*types.Var)
			if !ok || v.Pos() > rs.Pos() {
				continue // declared inside the loop: local scratch
			}
			if _, seen := appended[v]; !seen {
				appended[v] = as.Lhs[i]
			}
		}
		return true
	})
	vars := make([]*types.Var, 0, len(appended))
	for v := range appended {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		site := appended[v]
		if v.Parent() == v.Pkg().Scope() {
			continue // package-level aggregation: beyond a local heuristic
		}
		if sortedAfter(pass, fd, rs, v) {
			continue
		}
		// The collected slice is returned: defer judgment to the call
		// sites (pass 2/3) instead of flagging here — unless the range
		// sits inside a nested literal, which has no summarizable
		// identity.
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok &&
			!insideFuncLit(fd, rs) && returnsVar(pass, fd, v) {
			if _, dup := s.taint[fn]; !dup {
				s.taint[fn] = &srTaint{fn: fn, varName: v.Name(), site: site.Pos()}
			}
			continue
		}
		pass.Reportf(site.Pos(),
			"%s collects map-range elements and is never sorted afterwards in %s; "+
				"sort it (or the map keys) before it reaches output",
			v.Name(), fd.Name.Name)
	}
}

// insideFuncLit reports whether n sits inside a function literal nested
// in fd (so "returns" belong to the literal, not fd).
func insideFuncLit(fd *ast.FuncDecl, n ast.Node) bool {
	inside := false
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			if fl.Pos() <= n.Pos() && n.End() <= fl.End() {
				inside = true
			}
			return false
		}
		return !inside
	})
	return inside
}

// returnsVar reports whether fd returns v directly.
func returnsVar(pass *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !found
		}
		for _, r := range ret.Results {
			if id, ok := r.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// collectSinkParams records slice parameters the function writes to
// output in iteration order without sorting first.
func (s *srState) collectSinkParams(fd *ast.FuncDecl) {
	pass := s.pass
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok || fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				idx++
				continue
			}
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				if sortedAnywhere(pass, fd, v) {
					s.sorters[fn] = append(s.sorters[fn], idx)
				} else if writesParam(pass, fd, v) {
					s.sinks[fn] = append(s.sinks[fn], idx)
				}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
}

// writesParam reports whether fd hands v to a writer method, directly
// or element-wise through a range loop.
func writesParam(pass *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := funcOf(pass.TypesInfo, n.Fun); fn != nil && writerMethods[fn.Name()] && mentionsVar(pass, n, v) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
				if hasWriterCall(pass, n.Body) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func hasWriterCall(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := funcOf(pass.TypesInfo, call.Fun); fn != nil && writerMethods[fn.Name()] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// analyzeCallers checks each call to a tainted function within fd.
func (s *srState) analyzeCallers(fd *ast.FuncDecl) {
	pass := s.pass
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// t := tainted(...): judge what happens to t afterwards.
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			taint := s.taintOf(call)
			if taint == nil {
				return true
			}
			taint.calls++
			if len(n.Lhs) != 1 {
				return true // multi-assign from single call: untrackable
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := pass.TypesInfo.Defs[id].(*types.Var)
			if v == nil {
				v, _ = pass.TypesInfo.Uses[id].(*types.Var)
			}
			if v == nil {
				return true
			}
			if sortedAnywhere(pass, fd, v) || s.passedToSorter(fd, v) {
				taint.resolved++
				return true
			}
			if sinkPos, ok := s.findSinkUse(fd, call.End(), v); ok {
				taint.resolved++
				pass.Reportf(sinkPos,
					"%s returned by %s collects map-range elements unsorted and is written here in map order; sort it first",
					v.Name(), taint.fn.Name())
			}
			return true
		case *ast.CallExpr:
			// writer(..., tainted()) or sink(tainted()): the result is
			// written without ever touching a variable.
			if fn := funcOf(pass.TypesInfo, n.Fun); fn != nil && writerMethods[fn.Name()] {
				for _, arg := range n.Args {
					if taint := s.taintInExpr(arg); taint != nil {
						taint.calls++
						taint.resolved++
						pass.Reportf(n.Pos(),
							"result of %s collects map-range elements unsorted and is written here in map order; sort it first",
							taint.fn.Name())
					}
				}
				return true
			}
			if callee := funcOf(pass.TypesInfo, n.Fun); callee != nil {
				for _, i := range s.sinks[callee] {
					if i < len(n.Args) {
						if taint := s.taintInExpr(n.Args[i]); taint != nil {
							taint.calls++
							taint.resolved++
							pass.Reportf(n.Pos(),
								"result of %s flows unsorted into %s, which writes it in map order; sort it first",
								taint.fn.Name(), callee.Name())
						}
					}
				}
				// sortedEmit(w, keysOf(m)): the sorter orders the
				// result before it reaches output — clean.
				for _, i := range s.sorters[callee] {
					if i < len(n.Args) {
						if taint := s.taintInExpr(n.Args[i]); taint != nil {
							taint.calls++
							taint.resolved++
						}
					}
				}
			}
		}
		return true
	})
}

// passedToSorter reports whether v is handed to a local function that
// sorts the corresponding slice parameter — an indirect but provable
// ordering.
func (s *srState) passedToSorter(fd *ast.FuncDecl, v *types.Var) bool {
	pass := s.pass
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcOf(pass.TypesInfo, call.Fun)
		if fn == nil {
			return true
		}
		for _, i := range s.sorters[fn] {
			if i < len(call.Args) {
				if id, ok := call.Args[i].(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// taintOf returns the taint summary of the called function, or nil.
func (s *srState) taintOf(call *ast.CallExpr) *srTaint {
	fn := funcOf(s.pass.TypesInfo, call.Fun)
	if fn == nil {
		return nil
	}
	return s.taint[fn]
}

// taintInExpr finds a direct call to a tainted function within e.
func (s *srState) taintInExpr(e ast.Expr) *srTaint {
	var out *srTaint
	ast.Inspect(e, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if t := s.taintOf(call); t != nil {
				out = t
				return false
			}
		}
		return true
	})
	return out
}

// findSinkUse locates the first write of v after pos within fd: a
// writer call mentioning it, a range over it whose body writes, or a
// call passing it into a local sink parameter.
func (s *srState) findSinkUse(fd *ast.FuncDecl, pos token.Pos, v *types.Var) (token.Pos, bool) {
	pass := s.pass
	var at token.Pos
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n.Pos() < pos {
				return true
			}
			fn := funcOf(pass.TypesInfo, n.Fun)
			if fn == nil {
				return true
			}
			if writerMethods[fn.Name()] && mentionsVar(pass, n, v) {
				at, found = n.Pos(), true
				return false
			}
			if idxs, ok := s.sinks[fn]; ok {
				for _, i := range idxs {
					if i < len(n.Args) {
						if id, ok := n.Args[i].(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
							at, found = n.Pos(), true
							return false
						}
					}
				}
			}
		case *ast.RangeStmt:
			if n.Pos() < pos {
				return true
			}
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v && hasWriterCall(pass, n.Body) {
				at, found = n.For, true
				return false
			}
		}
		return true
	})
	return at, found
}

// reportResidualTaints flags collection sites whose sorted-ness was
// never proven: exported functions (unknown external callers), functions
// with no observed calls, or calls that neither sort nor visibly write.
func (s *srState) reportResidualTaints() {
	fns := make([]*types.Func, 0, len(s.taint))
	for fn := range s.taint {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		t := s.taint[fn]
		if !fn.Exported() && t.calls > 0 && t.resolved == t.calls {
			continue
		}
		why := "no intra-package caller sorts it"
		if fn.Exported() {
			why = "it escapes through the exported API"
		}
		s.pass.Reportf(t.site,
			"%s collects map-range elements, is returned unsorted from %s, and %s; "+
				"sort it (or the map keys) before it reaches output",
			t.varName, fn.Name(), why)
	}
}

// sortedAfter reports whether a sort.*/slices.Sort* call mentioning v
// appears in fd after the range statement.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, v *types.Var) bool {
	return sortCallAfter(pass, fd, rs.End(), v)
}

// sortedAnywhere reports whether any sort call in fd mentions v.
func sortedAnywhere(pass *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	return sortCallAfter(pass, fd, token.NoPos, v)
}

func sortCallAfter(pass *Pass, fd *ast.FuncDecl, after token.Pos, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		fn := funcOf(pass.TypesInfo, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		names := sortCalls[fn.Pkg().Path()]
		if names == nil || !names[fn.Name()] || !mentionsVar(pass, call, v) {
			return true
		}
		found = true
		return false
	})
	return found
}

// mentionsVar reports whether v appears anywhere in the call's
// arguments (covers sort.Strings(keys), sort.Slice(rows, ...),
// sort.Sort(byName(rows))).
func mentionsVar(pass *Pass, call *ast.CallExpr, v *types.Var) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}
