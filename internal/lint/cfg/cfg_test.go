package cfg_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/cfg"
)

// loadFixtures parses testdata/cfg/fixtures.go and indexes its
// functions by name.
func loadFixtures(t *testing.T) (map[string]*ast.FuncDecl, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("..", "testdata", "cfg", "fixtures.go")
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	fns := map[string]*ast.FuncDecl{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fns[fd.Name.Name] = fd
		}
	}
	return fns, fset
}

// render formats a node back to source for substring assertions.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, n)
	return buf.String()
}

// deadText concatenates the source of every node in dead blocks.
func deadText(fset *token.FileSet, g *cfg.Graph) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		if b.Live {
			continue
		}
		for _, n := range b.Nodes {
			sb.WriteString(render(fset, n))
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// findBlock returns the first live block containing a node whose
// rendered source is want or starts with want. Prefix (not substring)
// matching keeps a loop head — whose RangeStmt node renders the whole
// body — from swallowing queries for statements inside it.
func findBlock(fset *token.FileSet, g *cfg.Graph, want string) *cfg.Block {
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for _, n := range b.Nodes {
			if strings.HasPrefix(render(fset, n), want) {
				return b
			}
		}
	}
	return nil
}

// reaches reports whether to is reachable from from along successor
// edges (including a cycle back to from itself when from == to).
func reaches(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	var visit func(*cfg.Block) bool
	visit = func(b *cfg.Block) bool {
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if visit(s) {
					return true
				}
			}
		}
		return false
	}
	return visit(from)
}

func TestGraphShapes(t *testing.T) {
	fns, fset := loadFixtures(t)
	cases := []struct {
		fn       string
		exitLive bool   // a path falls off or returns
		deadHas  string // substring that must appear in dead blocks
	}{
		{fn: "forNoPost", exitLive: true},
		{fn: "spinForever", exitLive: false},
		{fn: "selectNoDefault", exitLive: true},
		{fn: "selectWithDefault", exitLive: true},
		{fn: "labeledBreakContinue", exitLive: true},
		{fn: "deferInLoop", exitLive: true},
		{fn: "deadAfterPanic", exitLive: true, deadHas: "x = 0"},
		{fn: "deadAfterReturn", exitLive: true, deadHas: "return 2"},
		{fn: "gotoBack", exitLive: true},
		{fn: "fallthroughChain", exitLive: true},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			fd, ok := fns[tc.fn]
			if !ok {
				t.Fatalf("fixture %s missing", tc.fn)
			}
			g := cfg.New(fd.Body, cfg.Options{})
			if g.Exit.Live != tc.exitLive {
				t.Errorf("%s: exit live = %v, want %v", tc.fn, g.Exit.Live, tc.exitLive)
			}
			if g.Entry == nil || !g.Entry.Live {
				t.Fatalf("%s: entry not live", tc.fn)
			}
			if len(g.Exit.Succs) != 0 {
				t.Errorf("%s: exit has %d successors", tc.fn, len(g.Exit.Succs))
			}
			// Every live block other than Exit must either have a
			// successor or be cut short by panic (Term set, no edge).
			for _, b := range g.Blocks {
				if !b.Live || b == g.Exit {
					continue
				}
				if len(b.Succs) == 0 && b.Term == nil {
					t.Errorf("%s: live block %d dangles with no successors and no terminator", tc.fn, b.Index)
				}
			}
			if tc.deadHas != "" {
				if dead := deadText(fset, g); !strings.Contains(dead, tc.deadHas) {
					t.Errorf("%s: dead blocks missing %q; dead code:\n%s", tc.fn, tc.deadHas, dead)
				}
			}
		})
	}
}

func TestForNoPostShape(t *testing.T) {
	fns, fset := loadFixtures(t)
	g := cfg.New(fns["forNoPost"].Body, cfg.Options{})
	// The condition-less loop head must have exactly one successor (the
	// body): no implicit exit edge.
	brk := findBlock(fset, g, "break")
	if brk == nil {
		t.Fatal("no block containing break")
	}
	if len(brk.Succs) != 1 {
		t.Fatalf("break block has %d successors, want 1", len(brk.Succs))
	}
	after := brk.Succs[0]
	// The code after the loop (return i) is reached only via break.
	if fb := findBlock(fset, g, "return i"); fb == nil || !reaches(after, fb) && after != fb {
		t.Errorf("break edge does not lead to the return block")
	}
}

func TestSelectNoDefaultShape(t *testing.T) {
	fns, fset := loadFixtures(t)
	g := cfg.New(fns["selectNoDefault"].Body, cfg.Options{})
	head := findBlock(fset, g, "select")
	if head == nil {
		t.Fatal("no select head block")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("select head has %d successors, want 2 (one per clause, no default edge)", len(head.Succs))
	}
	g2 := cfg.New(fns["selectWithDefault"].Body, cfg.Options{})
	head2 := findBlock(fset, g2, "select")
	if head2 == nil {
		t.Fatal("no select head block (default case)")
	}
	if len(head2.Succs) != 2 {
		t.Fatalf("select-with-default head has %d successors, want 2 (clause + default)", len(head2.Succs))
	}
}

func TestLabeledBreakContinueShape(t *testing.T) {
	fns, fset := loadFixtures(t)
	g := cfg.New(fns["labeledBreakContinue"].Body, cfg.Options{})
	brk := findBlock(fset, g, "break outer")
	cont := findBlock(fset, g, "continue outer")
	ret := findBlock(fset, g, "return total")
	outerHead := findBlock(fset, g, "for _, row := range m")
	innerHead := findBlock(fset, g, "for _, v := range row")
	for name, b := range map[string]*cfg.Block{"break outer": brk, "continue outer": cont, "return": ret, "outer head": outerHead, "inner head": innerHead} {
		if b == nil {
			t.Fatalf("no block for %s", name)
		}
	}
	// break outer jumps past both loops: from its successor, neither
	// range head is reachable, but the return is.
	if len(brk.Succs) != 1 {
		t.Fatalf("break outer has %d successors", len(brk.Succs))
	}
	if tgt := brk.Succs[0]; reaches(tgt, innerHead) || reaches(tgt, outerHead) {
		t.Error("break outer still reaches a loop head")
	} else if tgt != ret && !reaches(tgt, ret) {
		t.Error("break outer does not lead to the return")
	}
	// continue outer re-enters the outer head directly.
	if len(cont.Succs) != 1 || cont.Succs[0] != outerHead {
		t.Error("continue outer does not edge to the outer range head")
	}
}

func TestDeferInLoopShape(t *testing.T) {
	fns, fset := loadFixtures(t)
	g := cfg.New(fns["deferInLoop"].Body, cfg.Options{})
	d := findBlock(fset, g, "defer")
	if d == nil {
		t.Fatal("no block containing the defer")
	}
	// The defer's block is on the loop cycle: it reaches itself.
	if !reaches(d, d) {
		t.Error("defer block is not on a cycle")
	}
}

func TestPanicCutsExitEdge(t *testing.T) {
	fns, fset := loadFixtures(t)
	g := cfg.New(fns["deadAfterPanic"].Body, cfg.Options{})
	p := findBlock(fset, g, "panic")
	if p == nil {
		t.Fatal("no panic block")
	}
	if len(p.Succs) != 0 {
		t.Fatalf("panic block has %d successors, want 0", len(p.Succs))
	}
	if p.Term == nil {
		t.Error("panic block has no terminator")
	}
}

func TestGotoBackForsmLoop(t *testing.T) {
	fns, fset := loadFixtures(t)
	g := cfg.New(fns["gotoBack"].Body, cfg.Options{})
	inc := findBlock(fset, g, "i++")
	if inc == nil {
		t.Fatal("no block containing i++")
	}
	if !reaches(inc, inc) {
		t.Error("goto does not form a cycle")
	}
}

func TestFallthroughEdge(t *testing.T) {
	fns, fset := loadFixtures(t)
	g := cfg.New(fns["fallthroughChain"].Body, cfg.Options{})
	ft := findBlock(fset, g, "fallthrough")
	next := findBlock(fset, g, "case 1:")
	if ft == nil || next == nil {
		t.Fatal("fallthrough fixture blocks missing")
	}
	if len(ft.Succs) != 1 || ft.Succs[0] != next {
		t.Error("fallthrough does not edge into the next clause block")
	}
}

// TestForwardBranchRefinement pins the Succs[0]=true convention and the
// fixpoint driver: a string-set lattice where the Branch hook tags
// which way the condition went.
func TestForwardBranchRefinement(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
func f(c bool) {
	if c {
		a()
	} else {
		b()
	}
	done()
}
func a() {}
func b() {}
func done() {}
`
	file, err := parser.ParseFile(fset, "branch.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	g := cfg.New(fd.Body, cfg.Options{})

	type set = map[string]bool
	join := func(a, b any) any {
		out := set{}
		for k := range a.(set) {
			out[k] = true
		}
		for k := range b.(set) {
			out[k] = true
		}
		return out
	}
	in := cfg.Forward(g, cfg.Problem{
		Entry:    set{},
		Transfer: func(b *cfg.Block, in any) any { return in },
		Branch: func(cond ast.Expr, whenTrue bool, out any) any {
			tag := "F"
			if whenTrue {
				tag = "T"
			}
			return join(out, set{tag: true}).(set)
		},
		Join:  join,
		Equal: func(a, b any) bool { return len(a.(set)) == len(b.(set)) },
	})

	thenBlk := findBlock(fset, g, "a()")
	elseBlk := findBlock(fset, g, "b()")
	afterBlk := findBlock(fset, g, "done()")
	if thenBlk == nil || elseBlk == nil || afterBlk == nil {
		t.Fatal("missing blocks")
	}
	if f := in[thenBlk].(set); !f["T"] || f["F"] {
		t.Errorf("then-branch fact = %v, want {T}", f)
	}
	if f := in[elseBlk].(set); !f["F"] || f["T"] {
		t.Errorf("else-branch fact = %v, want {F}", f)
	}
	if f := in[afterBlk].(set); !f["T"] || !f["F"] {
		t.Errorf("join fact = %v, want {T,F}", f)
	}
}
