// Package cfg builds per-function control-flow graphs over go/ast and
// runs forward dataflow analyses to a fixpoint. It is the flow-sensitive
// substrate under the lockbalance, goleak, deferclose, snapshotsafe and
// sortedrange analyzers, and — like the rest of internal/lint — uses
// only the standard library.
//
// The graph is a list of basic blocks. Each block carries the statement
// and expression nodes executed in order when control enters it, an
// optional branch condition (Cond), and its successor edges. Blocks are
// purely syntactic: the builder walks statements only, so function
// literals nested in expressions are not inlined — analyzers descend
// into them separately if they care.
//
// Two conventions matter to clients:
//
//   - When Cond is non-nil, Succs[0] is the edge taken when Cond is
//     true and Succs[1] (if present) the edge when it is false. This is
//     what lets a dataflow Problem refine facts per branch (e.g. "err
//     != nil" proving a resource was never acquired).
//   - Calls that cannot return — panic, os.Exit, and anything the
//     Options.NoReturn callback claims — terminate their block with no
//     edge to Exit. Paths that end in panic are therefore exempt from
//     "on all paths" obligations, matching the runtime's behaviour of
//     unwinding defers.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block, entry first. Dead blocks (no path from
	// Entry) are kept — with Live false — so analyzers can report
	// unreachable code if they want to.
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block. Every return statement
	// and every fall-off-the-end path has an edge to it; panicking
	// paths do not.
	Exit *Block
}

// A Block is one basic block.
type Block struct {
	Index int
	// Nodes are the statements and branch conditions executed in order.
	// Conditions appear as their ast.Expr; everything else as the
	// ast.Stmt.
	Nodes []ast.Node
	// Cond, when non-nil, is the boolean condition deciding between
	// Succs[0] (true) and Succs[1] (false).
	Cond ast.Expr
	// Term is the statement that ended the block early, if any: a
	// return, a branch (break/continue/goto/fallthrough), or a call
	// that never returns.
	Term ast.Stmt
	// Live reports whether the block is reachable from Entry.
	Live  bool
	Succs []*Block
	Preds []*Block
}

// Options configures graph construction.
type Options struct {
	// NoReturn, when set, classifies calls that never return (panic,
	// os.Exit, a local fatal helper). When nil, only a call to an
	// identifier literally named "panic" is treated as terminal.
	NoReturn func(*ast.CallExpr) bool
}

// New builds the graph of one function body.
func New(body *ast.BlockStmt, opts Options) *Graph {
	b := &builder{
		g:      &Graph{},
		opts:   opts,
		labels: map[string]*Block{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit) // fall off the end: implicit return
	}
	b.markLive()
	return b.g
}

type builder struct {
	g    *Graph
	opts Options
	// cur is the block under construction; nil while the current point
	// is unreachable (after return/break/panic). Statements arriving
	// then open a fresh, unconnected (dead) block.
	cur    *Block
	frames []frame
	labels map[string]*Block // goto / labeled-statement targets
	// fallTarget is the next case clause's block while building a
	// switch clause, for fallthrough.
	fallTarget *Block
}

// A frame is one enclosing breakable construct (loop, switch, select).
type frame struct {
	label string
	brk   *Block
	cont  *Block // nil unless a loop
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// block returns the block under construction, opening a dead block when
// the current point is unreachable so dead statements still land in the
// graph.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jumpIfLive adds an edge from the current block to to, then marks the
// current point unreachable.
func (b *builder) jumpIfLive(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to)
	}
	b.cur = nil
}

func (b *builder) add(n ast.Node) {
	b.block().Nodes = append(b.block().Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt builds one statement. label is non-empty when the statement is
// the body of a LabeledStmt, so loops and switches register it on their
// frame.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.stmt(s.Stmt, s.Label.Name)
		default:
			// A plain labeled statement is a goto target: control
			// transfers to a fresh block.
			lb := b.labelBlock(s.Label.Name)
			if b.cur != nil {
				b.edge(b.cur, lb)
			}
			b.cur = lb
			b.stmt(s.Stmt, "")
		}

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(caseClauses(s.Body), label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(caseClauses(s.Body), label)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.ReturnStmt:
		blk := b.block()
		blk.Nodes = append(blk.Nodes, s)
		blk.Term = s
		b.jumpIfLive(b.g.Exit)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.noReturn(call) {
			b.block().Term = s
			b.cur = nil
		}

	default:
		// Assignments, declarations, sends, defers, go statements,
		// inc/dec, empty statements: straight-line nodes.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	cond := b.block()
	cond.Nodes = append(cond.Nodes, s.Cond)
	cond.Cond = s.Cond
	then := b.newBlock()
	after := b.newBlock()
	b.edge(cond, then) // Succs[0]: condition true
	var els *Block
	if s.Else != nil {
		els = b.newBlock()
		b.edge(cond, els) // Succs[1]: condition false
	} else {
		b.edge(cond, after)
	}
	b.cur = then
	b.stmt(s.Body, "")
	b.jumpIfLive(after)
	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else, "")
		b.jumpIfLive(after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.jumpIfLive(head)
	body := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
		b.edge(head, body)  // Succs[0]: condition true
		b.edge(head, after) // Succs[1]: condition false
	} else {
		// for { }: the only way out is break/return/panic.
		b.edge(head, body)
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.frames = append(b.frames, frame{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmt(s.Body, "")
	b.frames = b.frames[:len(b.frames)-1]
	b.jumpIfLive(cont)
	if post != nil {
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.jumpIfLive(head)
	// The RangeStmt node itself stands for the per-iteration key/value
	// assignment; analyzers match on it directly.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)  // another element
	b.edge(head, after) // exhausted
	b.frames = append(b.frames, frame{label: label, brk: after, cont: head})
	b.cur = body
	b.stmt(s.Body, "")
	b.frames = b.frames[:len(b.frames)-1]
	b.jumpIfLive(head)
	b.cur = after
}

func caseClauses(body *ast.BlockStmt) []*ast.CaseClause {
	out := make([]*ast.CaseClause, 0, len(body.List))
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc)
		}
	}
	return out
}

func (b *builder) switchClauses(clauses []*ast.CaseClause, label string) {
	head := b.block()
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after) // no case matched
	}
	b.frames = append(b.frames, frame{label: label, brk: after})
	savedFall := b.fallTarget
	for i, cc := range clauses {
		b.fallTarget = nil
		if i+1 < len(clauses) {
			b.fallTarget = blocks[i+1]
		}
		b.cur = blocks[i]
		b.add(cc)
		b.stmtList(cc.Body)
		b.jumpIfLive(after)
	}
	b.fallTarget = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.block()
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock()
	var clauses []*ast.CommClause
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok {
			clauses = append(clauses, cc)
		}
	}
	// Without a default clause the select blocks until a case is ready:
	// there is no head→after edge. select{} blocks forever, so head has
	// no successors at all and after is dead.
	b.frames = append(b.frames, frame{label: label, brk: after})
	for _, cc := range clauses {
		cb := b.newBlock()
		b.edge(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jumpIfLive(after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, s)
	blk.Term = s
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if f := b.findFrame(label, false); f != nil {
			b.edge(blk, f.brk)
		}
	case token.CONTINUE:
		if f := b.findFrame(label, true); f != nil {
			b.edge(blk, f.cont)
		}
	case token.GOTO:
		b.edge(blk, b.labelBlock(label))
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.edge(blk, b.fallTarget)
		}
	}
	b.cur = nil
}

// findFrame locates the innermost frame matching label (any frame when
// label is empty). needLoop restricts the search to loops (continue).
func (b *builder) findFrame(label string, needLoop bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) noReturn(call *ast.CallExpr) bool {
	if b.opts.NoReturn != nil {
		return b.opts.NoReturn(call)
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// markLive flags every block reachable from Entry.
func (b *builder) markLive() {
	var visit func(*Block)
	visit = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, s := range blk.Succs {
			visit(s)
		}
	}
	visit(b.g.Entry)
}
