package cfg

import "go/ast"

// A Problem is one forward dataflow analysis: a lattice (Join, Equal),
// a per-block transfer function, and an optional per-edge refinement
// for branch conditions. Facts are opaque to the driver; Transfer and
// Branch must treat their input as immutable and return fresh values
// when the fact changes.
type Problem struct {
	// Entry is the fact at function entry.
	Entry any
	// Transfer computes the fact at the end of a block from the fact at
	// its start.
	Transfer func(b *Block, in any) any
	// Branch, when set, refines the post-block fact along a conditional
	// edge: cond is the block's condition and whenTrue tells which edge
	// is being followed. Return out unchanged when the condition proves
	// nothing.
	Branch func(cond ast.Expr, whenTrue bool, out any) any
	// Join merges facts where paths meet. It must be commutative,
	// associative and idempotent, or the iteration may not converge.
	Join func(a, b any) any
	// Equal reports whether two facts are the same, ending iteration.
	Equal func(a, b any) bool
	// MaxIter caps fixpoint passes over the graph; 0 means a default
	// generous enough for any lattice of finite height.
	MaxIter int
}

// Forward runs the problem to a fixpoint and returns the fact at the
// ENTRY of every reached block. Blocks never reached (dead code, or cut
// off by Branch refinement) are absent from the map.
func Forward(g *Graph, p Problem) map[*Block]any {
	in := map[*Block]any{g.Entry: p.Entry}
	order := postorder(g)
	// Reverse postorder: process a block before its successors where
	// possible, so most functions converge in one or two passes.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	max := p.MaxIter
	if max <= 0 {
		max = 4*len(g.Blocks) + 8
	}
	for iter := 0; iter < max; iter++ {
		changed := false
		for _, b := range order {
			inFact, ok := in[b]
			if !ok {
				continue
			}
			out := p.Transfer(b, inFact)
			for i, s := range b.Succs {
				edgeFact := out
				if p.Branch != nil && b.Cond != nil && i < 2 {
					edgeFact = p.Branch(b.Cond, i == 0, out)
				}
				cur, seen := in[s]
				if !seen {
					in[s] = edgeFact
					changed = true
					continue
				}
				merged := p.Join(cur, edgeFact)
				if !p.Equal(merged, cur) {
					in[s] = merged
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// postorder returns the blocks reachable from Entry in DFS postorder.
func postorder(g *Graph) []*Block {
	var out []*Block
	seen := make(map[*Block]bool, len(g.Blocks))
	var visit func(*Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
		out = append(out, b)
	}
	visit(g.Entry)
	return out
}
