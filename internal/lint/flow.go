package lint

// flow.go holds the shared plumbing under the flow-sensitive analyzers
// (lockbalance, goleak, deferclose, snapshotsafe and the interprocedural
// half of sortedrange): function enumeration, canonical expression keys
// for lock/resource identity, and the no-return call classifier that
// keeps panicking paths out of "on all paths" obligations.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/cfg"
)

// declaredFuncs maps every function and method declared in the package
// to its declaration, so analyzers can look through one level of
// intra-package calls.
func declaredFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// funcBody is one analyzable body: a declared function/method or a
// function literal found anywhere in the package.
type funcBody struct {
	name string
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
}

// functionBodies enumerates every declared function plus every function
// literal, so flow analyzers cover goroutine bodies and closures too.
func functionBodies(pass *Pass) []funcBody {
	var out []funcBody
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcBody{name: fd.Name.Name, body: fd.Body, decl: fd})
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcBody{name: name + ".func", body: fl.Body})
				}
				return true
			})
		}
	}
	return out
}

// fatalCalls names stdlib functions that never return.
var fatalCalls = map[string]map[string]bool{
	"os":      {"Exit": true},
	"log":     {"Fatal": true, "Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true, "Panicln": true},
	"runtime": {"Goexit": true},
}

// noReturnPredicate classifies calls that never return: the panic
// builtin, os.Exit and friends, and — one level deep — local functions
// whose body ends in such a call (a main-package fatal(...) helper).
func noReturnPredicate(pass *Pass) func(*ast.CallExpr) bool {
	direct := func(call *ast.CallExpr) bool {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == types.Universe.Lookup("panic") {
				return true
			}
		}
		fn := funcOf(pass.TypesInfo, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		names := fatalCalls[fn.Pkg().Path()]
		return names != nil && names[fn.Name()]
	}
	// One-level summaries: a local function is no-return when its body's
	// last top-level statement is an unconditional no-return call.
	local := map[*types.Func]bool{}
	for fn, fd := range declaredFuncs(pass) {
		stmts := fd.Body.List
		if len(stmts) == 0 {
			continue
		}
		if es, ok := stmts[len(stmts)-1].(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && direct(call) {
				local[fn] = true
			}
		}
	}
	return func(call *ast.CallExpr) bool {
		if direct(call) {
			return true
		}
		fn := funcOf(pass.TypesInfo, call.Fun)
		return fn != nil && local[fn]
	}
}

// buildGraph constructs the CFG of one body with the pass's no-return
// classifier wired in.
func buildGraph(pass *Pass, body *ast.BlockStmt, noRet func(*ast.CallExpr) bool) *cfg.Graph {
	return cfg.New(body, cfg.Options{NoReturn: noRet})
}

// exprKey canonicalizes an lvalue-ish expression (an identifier or a
// selector chain rooted at one) to a stable string, so "s.mu" in two
// statements is the same lock and shadowed variables stay distinct.
// The second result is false for expressions with no stable identity
// (calls, index expressions, unresolved identifiers).
func exprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return fmt.Sprintf("%s@%d", v.Name(), v.Pos()), true
		}
	case *ast.SelectorExpr:
		base, ok := exprKey(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return exprKey(info, e.X)
	case *ast.StarExpr:
		return exprKey(info, e.X)
	}
	return "", false
}

// rootVar returns the *types.Var at the root of an identifier, selector,
// index or star expression chain ("s.snap.Epoch" → s, "m[k]" → m).
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			v, _ := obj.(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// namedTypeName strips pointers and reports the defining package path
// and name of a named (or instantiated generic) type.
func namedTypeName(t types.Type) (pkg, name string, ok bool) {
	for {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			continue
		}
		break
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := n.Obj()
	if obj == nil {
		return "", "", false
	}
	if obj.Pkg() == nil {
		return "", obj.Name(), true // error, or another universe type
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// methodOn resolves call to a method named name whose receiver's named
// type is pkgPath.typeName (through pointers), returning the receiver
// expression.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	rp, rn, ok := namedTypeName(sig.Recv().Type())
	if !ok || rp != pkgPath || rn != typeName {
		return nil, false
	}
	return sel.X, true
}

// splitRecvPath splits key = recvKey + path and returns path (like
// ".mu"), for rebasing a callee's receiver-rooted lock effects onto the
// caller's receiver expression.
func splitRecvPath(key, recvKey string) (string, bool) {
	rest, ok := strings.CutPrefix(key, recvKey)
	if !ok || rest == "" || rest[0] != '.' {
		return "", false
	}
	return rest, true
}
