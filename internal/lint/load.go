package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Fset positions every file in the loader's shared set.
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module from source.
// It needs no network and no go command: module-local imports are
// resolved by walking the module tree, everything else (the standard
// library) goes through go/importer's source importer. Packages are
// cached, so loading ./... type-checks each module package exactly
// once. Test files (_test.go) are excluded: the determinism invariants
// guard production output paths, and tests exercise wall clocks and
// fake randomness on purpose.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	fset *token.FileSet
	src  types.Importer
	mu   sync.Mutex
	pkgs map[string]*Package

	typeChecks int // module-local packages type-checked from source
}

// TypeChecks returns how many module-local packages this loader has
// type-checked from source. Cache hits do not count, so the counter
// going flat across two CheckDirs calls proves the memoization works.
func (l *Loader) TypeChecks() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.typeChecks
}

// disableCgo makes the source importer type-check cgo-capable stdlib
// packages (net, os/user) in their pure-Go configuration, which is the
// only configuration that can be checked from source alone.
var disableCgo = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

// NewLoader creates a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	disableCgo()
	root, mod, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: mod,
		fset:   fset,
		src:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// Load type-checks the package in the given directory (absolute or
// relative to the module root).
func (l *Loader) Load(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.Root, dir)
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path)
}

// Expand resolves package patterns ("./...", a directory, or an
// import path below the module) to the sorted list of package
// directories relative to the module root.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "." || base == "" {
			base = ""
		}
		start := filepath.Join(l.Root, filepath.FromSlash(base))
		if !recursive {
			if hasGoFiles(start) {
				rel, err := filepath.Rel(l.Root, start)
				if err != nil {
					return nil, err
				}
				add(rel)
				continue
			}
			return nil, fmt.Errorf("lint: no Go files in %s", pat)
		}
		err := filepath.WalkDir(start, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				add(rel)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadPatterns expands patterns and loads every matched package.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir contains at least one non-test .go
// file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// loadPath loads a module-local import path, caching the result.
func (l *Loader) loadPath(path string) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle guard
	l.typeChecks++
	l.mu.Unlock()

	pkg, err := l.typeCheck(path)

	l.mu.Lock()
	if err != nil {
		delete(l.pkgs, path)
	} else {
		l.pkgs[path] = pkg
	}
	l.mu.Unlock()
	return pkg, err
}

func (l *Loader) typeCheck(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: moduleImporter{l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		if len(typeErrs) > 0 {
			err = typeErrs[0]
		}
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// moduleImporter resolves module-local imports through the loader (so
// each module package is type-checked once, with full syntax) and
// delegates the rest to the source importer.
type moduleImporter struct{ l *Loader }

func (m moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.l.Module || strings.HasPrefix(path, m.l.Module+"/") {
		pkg, err := m.l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.l.src.Import(path)
}

// sharedLoaders memoizes one Loader per module root for the life of
// the process, so repeated CheckDirs calls (the self-check test, the
// warm half of BenchmarkIotlintSelf, editor integrations that lint on
// save) type-check each package — and the standard library behind it —
// exactly once. The cache never observes source edits made after the
// first load; a process that needs a fresh view uses NewLoader.
var (
	sharedMu      sync.Mutex
	sharedLoaders = map[string]*Loader{}
)

// SharedLoader returns the process-wide loader for the module at or
// above dir, creating it on first use.
func SharedLoader(dir string) (*Loader, error) {
	root, _, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if l, ok := sharedLoaders[root]; ok {
		return l, nil
	}
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	sharedLoaders[root] = l
	return l, nil
}

// CheckDirs is the one-call entry used by cmd/iotlint and the
// self-check test: load every package matching patterns under the
// module containing root and run the analyzers over them. The loader
// is shared process-wide, so back-to-back calls reuse every
// type-checked package.
func CheckDirs(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	rep, err := CheckDirsFull(root, patterns, analyzers)
	if err != nil {
		return nil, err
	}
	return rep.Unsuppressed(), nil
}

// CheckDirsFull is CheckDirs returning the full Report, including
// suppressed diagnostics and stale //lint:allow annotations.
func CheckDirsFull(root string, patterns []string, analyzers []*Analyzer) (Report, error) {
	l, err := SharedLoader(root)
	if err != nil {
		return Report{}, err
	}
	pkgs, err := l.LoadPatterns(patterns)
	if err != nil {
		return Report{}, err
	}
	return CheckFull(pkgs, analyzers)
}
