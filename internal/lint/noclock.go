package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// noclockFuncs are the time package functions that read the wall
// clock. Referencing one — as a call or as a function value — makes
// output depend on when the pipeline ran.
var noclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// noclockExemptions is the repo policy: internal/obs owns all
// observability timing (Tracer bases, Stopwatch), and probe/clock.go
// is the production implementation of the injectable Clock.
var noclockExemptions = []noclockExemption{
	{pkgSuffix: "internal/obs"},
	{pkgSuffix: "internal/probe", file: "clock.go"},
}

type noclockExemption struct {
	pkgSuffix string // package path suffix; empty matches any package
	file      string // file base name; empty matches every file
}

func (e noclockExemption) covers(pkgPath, filename string) bool {
	if e.pkgSuffix != "" && !strings.HasSuffix(pkgPath, e.pkgSuffix) {
		return false
	}
	return e.file == "" || e.file == filepath.Base(filename)
}

// Noclock returns the analyzer enforcing that production code never
// reads the wall clock directly: time.Now/Since/Until are reserved to
// internal/obs and probe/clock.go, everything else threads the
// injected Clock or an obs.Stopwatch so seeded runs are reproducible.
func Noclock() *Analyzer { return noclockAnalyzer(noclockExemptions) }

func noclockAnalyzer(exempt []noclockExemption) *Analyzer {
	a := &Analyzer{
		Name: "noclock",
		Doc: "forbids direct time.Now/time.Since/time.Until outside internal/obs and " +
			"probe/clock.go; use the injected Clock or an obs.Stopwatch so output " +
			"never depends on when the run happened",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			filename := pass.Fset.Position(f.Pos()).Filename
			skip := false
			for _, e := range exempt {
				if e.covers(pass.Pkg.Path(), filename) {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := funcOf(pass.TypesInfo, sel)
				if fn == nil || !noclockFuncs[fn.Name()] || !pkgFunc(fn, "time", fn.Name()) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; thread the injected Clock or an obs.Stopwatch",
					fn.Name())
				return true
			})
		}
		return nil
	}
	return a
}
