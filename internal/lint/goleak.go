package lint

import (
	"go/ast"
	"go/types"
)

// Goleak returns the analyzer that demands every goroutine have a join
// or cancellation discipline, the invariant the probe worker pools and
// the daemon rely on for graceful drain. A `go` statement is accepted
// when any of the following holds:
//
//   - an argument carries a context.Context, a channel, or a
//     *sync.WaitGroup (the spawner handed over a leash);
//   - the goroutine body (a function literal, or a same-package
//     function's body, one level deep) signals completion: it calls
//     WaitGroup.Done or Wait, sends on or closes a channel, ranges over
//     a channel, or references a context.Context value it captured.
//
// A goroutine that does none of these — fire-and-forget into an
// external call, or a loop with no exit signal — is flagged. Genuinely
// unowned goroutines (a debug HTTP server serving until process exit,
// an accept loop whose listener close is the shutdown signal) take a
// //lint:allow goleak annotation stating who stops them.
func Goleak() *Analyzer {
	a := &Analyzer{
		Name: "goleak",
		Doc: "flags go statements with no join or cancellation discipline: no WaitGroup, " +
			"no channel send/close/range, no context — nothing that ever stops or " +
			"observes the goroutine",
	}
	a.Run = func(pass *Pass) error {
		decls := declaredFuncs(pass)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goDisciplined(pass, decls, gs) {
					pass.Reportf(gs.Pos(),
						"goroutine has no join or cancellation discipline (no WaitGroup, channel, or context); it can outlive its owner")
				}
				return true
			})
		}
		return nil
	}
	return a
}

func goDisciplined(pass *Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) bool {
	call := gs.Call
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && leashType(tv.Type) {
			return true
		}
	}
	var body *ast.BlockStmt
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := funcOf(pass.TypesInfo, fun); fn != nil && fn.Pkg() == pass.Pkg {
			if fd := decls[fn]; fd != nil {
				body = fd.Body
			}
		}
	}
	if body == nil {
		// An external or unresolvable callee with no leash argument:
		// nothing ties the goroutine to its owner.
		return false
	}
	return bodySignals(pass, body)
}

// leashType reports whether t is a handle the spawner can use to join
// or cancel the goroutine.
func leashType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if pkg, name, ok := namedTypeName(t); ok {
		if pkg == "context" && name == "Context" {
			return true
		}
		if pkg == "sync" && name == "WaitGroup" {
			return true
		}
	}
	return false
}

// bodySignals reports whether a goroutine body contains any completion
// or cancellation signal.
func bodySignals(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == types.Universe.Lookup("close") {
				found = true
				break
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					found = true
				}
			}
		case *ast.Ident:
			// A captured context is a cancellation leash even when the
			// body only consults it (ctx.Err, ctx.Done in a select).
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && v.Type() != nil {
				if pkg, name, ok := namedTypeName(v.Type()); ok && pkg == "context" && name == "Context" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
