package lint

import (
	"go/token"
	"strings"
	"testing"
)

func diagAt(analyzer, file string, line int) Diagnostic {
	return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line, Column: 1}, Message: "m"}
}

func allowAt(analyzer, reason, file string, line int) allowance {
	return allowance{pos: token.Position{Filename: file, Line: line, Column: 40}, analyzer: analyzer, reason: reason}
}

func TestApplyAllowances(t *testing.T) {
	valid := map[string]bool{"noclock": true, "sortedrange": true}

	t.Run("same line and line below are covered", func(t *testing.T) {
		diags := []Diagnostic{diagAt("noclock", "a.go", 10), diagAt("noclock", "a.go", 11)}
		allows := []allowance{allowAt("noclock", "reason", "a.go", 10)}
		if got := applyAllowances(diags, allows, valid); len(got) != 0 {
			t.Fatalf("want all suppressed, got %v", got)
		}
	})

	t.Run("two lines below is not covered", func(t *testing.T) {
		diags := []Diagnostic{diagAt("noclock", "a.go", 12)}
		allows := []allowance{allowAt("noclock", "reason", "a.go", 10)}
		if got := applyAllowances(diags, allows, valid); len(got) != 1 {
			t.Fatalf("want 1 surviving diagnostic, got %v", got)
		}
	})

	t.Run("analyzer name must match", func(t *testing.T) {
		diags := []Diagnostic{diagAt("sortedrange", "a.go", 10)}
		allows := []allowance{allowAt("noclock", "reason", "a.go", 10)}
		if got := applyAllowances(diags, allows, valid); len(got) != 1 {
			t.Fatalf("want 1 surviving diagnostic, got %v", got)
		}
	})

	t.Run("missing reason is a diagnostic", func(t *testing.T) {
		allows := []allowance{allowAt("noclock", "", "a.go", 10)}
		got := applyAllowances(nil, allows, valid)
		if len(got) != 1 || got[0].Analyzer != "lintallow" || !strings.Contains(got[0].Message, "needs a reason") {
			t.Fatalf("want a lintallow reason diagnostic, got %v", got)
		}
	})

	t.Run("reasonless annotation suppresses nothing", func(t *testing.T) {
		diags := []Diagnostic{diagAt("noclock", "a.go", 10)}
		allows := []allowance{allowAt("noclock", "", "a.go", 10)}
		if got := applyAllowances(diags, allows, valid); len(got) != 2 {
			t.Fatalf("want finding + lintallow diagnostic, got %v", got)
		}
	})

	t.Run("unknown analyzer is a diagnostic", func(t *testing.T) {
		allows := []allowance{allowAt("nosuch", "reason", "a.go", 10)}
		got := applyAllowances(nil, allows, valid)
		if len(got) != 1 || got[0].Analyzer != "lintallow" || !strings.Contains(got[0].Message, "unknown analyzer") {
			t.Fatalf("want a lintallow unknown-analyzer diagnostic, got %v", got)
		}
	})

	t.Run("output is sorted by position", func(t *testing.T) {
		diags := []Diagnostic{
			diagAt("sortedrange", "b.go", 5),
			diagAt("noclock", "a.go", 20),
			diagAt("noclock", "a.go", 3),
		}
		got := applyAllowances(diags, nil, valid)
		if len(got) != 3 || got[0].Pos.Line != 3 || got[1].Pos.Line != 20 || got[2].Pos.Filename != "b.go" {
			t.Fatalf("diagnostics not sorted: %v", got)
		}
	})
}
