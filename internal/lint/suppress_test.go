package lint

import (
	"go/token"
	"strings"
	"testing"
)

func diagAt(analyzer, file string, line int) Diagnostic {
	return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line, Column: 1}, Message: "m"}
}

func allowAt(analyzer, reason, file string, line int) allowance {
	return allowance{pos: token.Position{Filename: file, Line: line, Column: 40}, analyzer: analyzer, reason: reason}
}

// unsuppressed filters applyAllowances output the way Check does.
func unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

func TestApplyAllowances(t *testing.T) {
	valid := map[string]bool{"noclock": true, "sortedrange": true}

	t.Run("same line and line below are covered", func(t *testing.T) {
		diags := []Diagnostic{diagAt("noclock", "a.go", 10), diagAt("noclock", "a.go", 11)}
		allows := []allowance{allowAt("noclock", "reason", "a.go", 10)}
		all, stale := applyAllowances(diags, allows, valid)
		if got := unsuppressed(all); len(got) != 0 {
			t.Fatalf("want all suppressed, got %v", got)
		}
		if len(all) != 2 || !all[0].Suppressed || all[0].Reason != "reason" {
			t.Fatalf("suppressed diagnostics should survive with the reason attached, got %v", all)
		}
		if len(stale) != 0 {
			t.Fatalf("annotation suppressed two findings, want no stale, got %v", stale)
		}
	})

	t.Run("two lines below is not covered", func(t *testing.T) {
		diags := []Diagnostic{diagAt("noclock", "a.go", 12)}
		allows := []allowance{allowAt("noclock", "reason", "a.go", 10)}
		all, stale := applyAllowances(diags, allows, valid)
		if got := unsuppressed(all); len(got) != 1 {
			t.Fatalf("want 1 surviving diagnostic, got %v", got)
		}
		if len(stale) != 1 || stale[0].Analyzer != "noclock" || stale[0].Pos.Line != 10 {
			t.Fatalf("out-of-range annotation should be stale, got %v", stale)
		}
	})

	t.Run("analyzer name must match", func(t *testing.T) {
		diags := []Diagnostic{diagAt("sortedrange", "a.go", 10)}
		allows := []allowance{allowAt("noclock", "reason", "a.go", 10)}
		all, stale := applyAllowances(diags, allows, valid)
		if got := unsuppressed(all); len(got) != 1 {
			t.Fatalf("want 1 surviving diagnostic, got %v", got)
		}
		if len(stale) != 1 {
			t.Fatalf("mismatched annotation should be stale, got %v", stale)
		}
	})

	t.Run("missing reason is a diagnostic", func(t *testing.T) {
		allows := []allowance{allowAt("noclock", "", "a.go", 10)}
		got, stale := applyAllowances(nil, allows, valid)
		if len(got) != 1 || got[0].Analyzer != "lintallow" || !strings.Contains(got[0].Message, "needs a reason") {
			t.Fatalf("want a lintallow reason diagnostic, got %v", got)
		}
		if len(stale) != 0 {
			t.Fatalf("malformed annotations are diagnostics, not stale entries, got %v", stale)
		}
	})

	t.Run("reasonless annotation suppresses nothing", func(t *testing.T) {
		diags := []Diagnostic{diagAt("noclock", "a.go", 10)}
		allows := []allowance{allowAt("noclock", "", "a.go", 10)}
		all, _ := applyAllowances(diags, allows, valid)
		if got := unsuppressed(all); len(got) != 2 {
			t.Fatalf("want finding + lintallow diagnostic, got %v", got)
		}
	})

	t.Run("unknown analyzer is a diagnostic", func(t *testing.T) {
		allows := []allowance{allowAt("nosuch", "reason", "a.go", 10)}
		got, _ := applyAllowances(nil, allows, valid)
		if len(got) != 1 || got[0].Analyzer != "lintallow" || !strings.Contains(got[0].Message, "unknown analyzer") {
			t.Fatalf("want a lintallow unknown-analyzer diagnostic, got %v", got)
		}
	})

	t.Run("output is sorted by position", func(t *testing.T) {
		diags := []Diagnostic{
			diagAt("sortedrange", "b.go", 5),
			diagAt("noclock", "a.go", 20),
			diagAt("noclock", "a.go", 3),
		}
		got, _ := applyAllowances(diags, nil, valid)
		if len(got) != 3 || got[0].Pos.Line != 3 || got[1].Pos.Line != 20 || got[2].Pos.Filename != "b.go" {
			t.Fatalf("diagnostics not sorted: %v", got)
		}
	})

	t.Run("stale entries are sorted by position", func(t *testing.T) {
		allows := []allowance{
			allowAt("noclock", "later", "b.go", 4),
			allowAt("noclock", "earlier", "a.go", 7),
		}
		_, stale := applyAllowances(nil, allows, valid)
		if len(stale) != 2 || stale[0].Pos.Filename != "a.go" || stale[1].Pos.Filename != "b.go" {
			t.Fatalf("stale not sorted: %v", stale)
		}
	})

	t.Run("annotation matching on the line below is not stale", func(t *testing.T) {
		diags := []Diagnostic{diagAt("noclock", "a.go", 11)}
		allows := []allowance{allowAt("noclock", "reason", "a.go", 10)}
		_, stale := applyAllowances(diags, allows, valid)
		if len(stale) != 0 {
			t.Fatalf("annotation matched on the line below, want no stale, got %v", stale)
		}
	})
}
