package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/cfg"
)

// lockKind distinguishes the four sync.Mutex/RWMutex operations.
type lockKind int

const (
	lockW   lockKind = iota // Lock
	unlockW                 // Unlock
	lockR                   // RLock
	unlockR                 // RUnlock
)

func (k lockKind) String() string {
	return [...]string{"Lock", "Unlock", "RLock", "RUnlock"}[k]
}

func (k lockKind) token(key string) string {
	if k == lockR || k == unlockR {
		return key + "|R"
	}
	return key + "|W"
}

func (k lockKind) acquires() bool { return k == lockW || k == lockR }

// lockFact is the dataflow fact: locks that may be held entering a
// block, and locks whose release is deferred.
type lockFact struct {
	held     map[string]token.Pos // token -> acquisition site
	deferred map[string]bool      // token -> an unlock is deferred
}

func (f lockFact) clone() lockFact {
	out := lockFact{held: make(map[string]token.Pos, len(f.held)), deferred: make(map[string]bool, len(f.deferred))}
	for k, v := range f.held {
		out.held[k] = v
	}
	for k := range f.deferred {
		out.deferred[k] = true
	}
	return out
}

// lockEffect is one entry of a callee summary: a lock operation on a
// path relative to the receiver (".mu").
type lockEffect struct {
	path string
	kind lockKind
}

// Lockbalance returns the flow-sensitive analyzer enforcing the lock
// discipline the daemon and the probe engine rely on: every
// sync.Mutex/RWMutex Lock reaches an Unlock on all paths to return
// (directly or via defer), and no path re-locks a mutex it may already
// hold. Paths ending in panic/os.Exit are exempt — the runtime unwinds
// defers and the process dies anyway.
//
// One level of intra-package calls is summarized: a method whose body
// unconditionally locks or unlocks mutexes reachable from its receiver
// (a lock()/unlock() helper pair) carries those effects to its callers.
// Conditional locking inside a helper defeats the summary, and a
// matching conditional unlock on every path is beyond the may-held
// lattice — such patterns take a //lint:allow lockbalance annotation.
func Lockbalance() *Analyzer {
	a := &Analyzer{
		Name: "lockbalance",
		Doc: "flags sync.Mutex/RWMutex locks that are not released on every path to " +
			"return (defer-aware) and locks re-acquired while possibly held; " +
			"one level of intra-package lock()/unlock() helpers is summarized",
	}
	a.Run = func(pass *Pass) error {
		noRet := noReturnPredicate(pass)
		sums := lockSummaries(pass)
		for _, fb := range functionBodies(pass) {
			checkLockBalance(pass, fb, sums, noRet)
		}
		return nil
	}
	return a
}

// lockOp resolves a call to a direct sync.Mutex/RWMutex operation on an
// expression with stable identity. TryLock/TryRLock are ignored: their
// result is branched on, which the may-held lattice cannot track.
func lockOp(pass *Pass, call *ast.CallExpr) (key string, display string, kind lockKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", 0, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", 0, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", 0, false
	}
	if _, name, named := namedTypeName(sig.Recv().Type()); !named || (name != "Mutex" && name != "RWMutex") {
		return "", "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		kind = lockW
	case "Unlock":
		kind = unlockW
	case "RLock":
		kind = lockR
	case "RUnlock":
		kind = unlockR
	default:
		return "", "", 0, false
	}
	key, ok = exprKey(pass.TypesInfo, sel.X)
	if !ok {
		return "", "", 0, false
	}
	return key, exprText(sel.X), kind, true
}

// exprText renders an ident/selector chain for diagnostics.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.StarExpr:
		return exprText(e.X)
	}
	return "?"
}

// lockSummaries computes one-level summaries for methods whose lock
// operations on receiver-rooted mutexes are all unconditional (directly
// in the body's top-level statement list). A method with any
// receiver-rooted lock op in nested control flow gets no summary.
func lockSummaries(pass *Pass) map[*types.Func][]lockEffect {
	out := map[*types.Func][]lockEffect{}
	for fn, fd := range declaredFuncs(pass) {
		if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
			continue
		}
		recvKey, ok := exprKey(pass.TypesInfo, fd.Recv.List[0].Names[0])
		if !ok {
			continue
		}
		var effects []lockEffect
		var deferredEffects []lockEffect
		pure := true
		topLevel := map[ast.Node]bool{}
		for _, s := range fd.Body.List {
			topLevel[s] = true
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			key, _, kind, isOp := lockOp(pass, call)
			if !isOp {
				return true
			}
			path, rooted := splitRecvPath(key, recvKey)
			if !rooted {
				return true
			}
			// The op counts for the summary only when unconditional:
			// a direct top-level statement or a top-level defer.
			parentStmt := false
			deferredOp := false
			for s := range topLevel {
				switch s := s.(type) {
				case *ast.ExprStmt:
					if s.X == call {
						parentStmt = true
					}
				case *ast.DeferStmt:
					if s.Call == call {
						parentStmt, deferredOp = true, true
					}
				}
			}
			if !parentStmt {
				pure = false
				return true
			}
			if deferredOp {
				deferredEffects = append(deferredEffects, lockEffect{path: path, kind: kind})
			} else {
				effects = append(effects, lockEffect{path: path, kind: kind})
			}
			return true
		})
		if !pure || (len(effects) == 0 && len(deferredEffects) == 0) {
			continue
		}
		// Defers run at return: net order is body effects then defers.
		out[fn] = append(effects, deferredEffects...)
	}
	return out
}

// netAcquires reports whether a summary leaves locks held at return —
// the signature of a deliberate lock() handoff helper.
func netAcquires(effects []lockEffect) bool {
	held := map[string]bool{}
	for _, e := range effects {
		tok := e.kind.token(e.path)
		if e.kind.acquires() {
			held[tok] = true
		} else {
			delete(held, tok)
		}
	}
	return len(held) > 0
}

func checkLockBalance(pass *Pass, fb funcBody, sums map[*types.Func][]lockEffect, noRet func(*ast.CallExpr) bool) {
	g := buildGraph(pass, fb.body, noRet)

	// A function summarized as net-acquiring hands its locks to the
	// caller on purpose; the caller-side check enforces the balance, so
	// the helper itself is exempt from leak reports (double-lock still
	// applies).
	handoff := false
	if fb.decl != nil {
		if fn, ok := pass.TypesInfo.Defs[fb.decl.Name].(*types.Func); ok {
			handoff = netAcquires(sums[fn])
		}
	}

	display := map[string]string{} // token -> rendered mutex expr

	// applyOp mutates fact with one lock operation; report is nil
	// during fixpoint iteration.
	applyOp := func(fact *lockFact, key, disp string, kind lockKind, pos token.Pos, deferredOp bool, report func(string, token.Pos)) {
		tok := kind.token(key)
		if _, seen := display[tok]; !seen {
			display[tok] = disp
		}
		switch {
		case deferredOp && !kind.acquires():
			fact.deferred[tok] = true
		case deferredOp:
			// defer mu.Lock() is pathological; ignore.
		case kind.acquires():
			if _, already := fact.held[tok]; already && kind == lockW && report != nil {
				report(fmt.Sprintf("%s.Lock() while %s may already be held; a second Lock deadlocks", disp, disp), pos)
			}
			if _, already := fact.held[tok]; !already {
				fact.held[tok] = pos
			}
		default:
			delete(fact.held, tok)
			delete(fact.deferred, tok)
		}
	}

	// applyCall handles one call expression: a direct lock op or a
	// summarized intra-package helper.
	applyCall := func(fact *lockFact, call *ast.CallExpr, deferredOp bool, report func(string, token.Pos)) {
		if key, disp, kind, ok := lockOp(pass, call); ok {
			applyOp(fact, key, disp, kind, call.Pos(), deferredOp, report)
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return
		}
		effects, ok := sums[fn]
		if !ok {
			return
		}
		recvKey, ok := exprKey(pass.TypesInfo, sel.X)
		if !ok {
			return
		}
		recvDisp := exprText(sel.X)
		for _, e := range effects {
			k := e.kind
			if deferredOp && k.acquires() {
				continue
			}
			applyOp(fact, recvKey+e.path, recvDisp+e.path, k, call.Pos(), deferredOp && !k.acquires(), report)
		}
	}

	transfer := func(b *cfg.Block, fact lockFact, report func(string, token.Pos)) lockFact {
		out := fact.clone()
		for _, n := range b.Nodes {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					applyCall(&out, call, false, report)
				}
			case *ast.DeferStmt:
				if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
					// defer func() { mu.Unlock() }(): unconditional
					// top-level unlocks count as deferred releases.
					for _, st := range fl.Body.List {
						if es, ok := st.(*ast.ExprStmt); ok {
							if call, ok := es.X.(*ast.CallExpr); ok {
								applyCall(&out, call, true, report)
							}
						}
					}
					continue
				}
				applyCall(&out, s.Call, true, report)
			}
		}
		return out
	}

	in := cfg.Forward(g, cfg.Problem{
		Entry: lockFact{held: map[string]token.Pos{}, deferred: map[string]bool{}},
		Transfer: func(b *cfg.Block, in any) any {
			return transfer(b, in.(lockFact), nil)
		},
		Join: func(a, b any) any {
			fa, fb := a.(lockFact), b.(lockFact)
			out := fa.clone()
			for k, p := range fb.held {
				if cur, ok := out.held[k]; !ok || p < cur {
					out.held[k] = p
				}
			}
			for k := range fb.deferred {
				out.deferred[k] = true
			}
			return out
		},
		Equal: func(a, b any) bool {
			fa, fb := a.(lockFact), b.(lockFact)
			if len(fa.held) != len(fb.held) || len(fa.deferred) != len(fb.deferred) {
				return false
			}
			for k, p := range fa.held {
				if q, ok := fb.held[k]; !ok || p != q {
					return false
				}
			}
			for k := range fa.deferred {
				if !fb.deferred[k] {
					return false
				}
			}
			return true
		},
	})

	// Reporting sweep: re-run transfers with the fixpoint entry facts,
	// this time surfacing double-locks; then check every edge into Exit
	// for locks still held with no deferred release.
	type repKey struct {
		msg string
		pos token.Pos
	}
	seen := map[repKey]bool{}
	report := func(msg string, pos token.Pos) {
		k := repKey{msg, pos}
		if !seen[k] {
			seen[k] = true
			pass.Reportf(pos, "%s", msg)
		}
	}
	var leaks []repKey
	for _, b := range g.Blocks {
		fact, ok := in[b]
		if !ok || !b.Live {
			continue
		}
		out := transfer(b, fact.(lockFact), report)
		exits := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits || handoff {
			continue
		}
		toks := make([]string, 0, len(out.held))
		for tok := range out.held {
			if !out.deferred[tok] {
				toks = append(toks, tok)
			}
		}
		sort.Strings(toks)
		for _, tok := range toks {
			op := "Lock"
			if strings.HasSuffix(tok, "|R") {
				op = "RLock"
			}
			leaks = append(leaks, repKey{
				msg: fmt.Sprintf("%s.%s() in %s is not released on every path to return; unlock it or defer the unlock", display[tok], op, fb.name),
				pos: out.held[tok],
			})
		}
	}
	for _, l := range leaks {
		report(l.msg, l.pos)
	}
}
