package lint

import (
	"go/ast"
	"strings"
)

// randPackages are the pseudo-randomness packages whose top-level
// functions draw from a process-global (or self-seeding, in v2)
// source, which no seeded pipeline run can reproduce.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Seededrand returns the analyzer forbidding the global math/rand
// source. Constructors (rand.New, rand.NewSource, rand.NewPCG, ...)
// stay legal: the rule is that randomness must flow through a
// *rand.Rand that the caller seeded and threaded explicitly.
func Seededrand() *Analyzer {
	a := &Analyzer{
		Name: "seededrand",
		Doc: "forbids math/rand top-level functions (rand.Intn, rand.Shuffle, ...): they " +
			"draw from a process-global source that seeded runs cannot reproduce; thread " +
			"a seeded *rand.Rand instead",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := funcOf(pass.TypesInfo, sel)
				if fn == nil || fn.Pkg() == nil || !randPackages[fn.Pkg().Path()] {
					return true
				}
				if !pkgFunc(fn, fn.Pkg().Path(), fn.Name()) {
					return true // method on *rand.Rand: properly threaded
				}
				if strings.HasPrefix(fn.Name(), "New") {
					return true // constructing an explicit source is the fix
				}
				pass.Reportf(sel.Pos(),
					"%s.%s uses the process-global rand source; thread a seeded *rand.Rand",
					fn.Pkg().Path(), fn.Name())
				return true
			})
		}
		return nil
	}
	return a
}
