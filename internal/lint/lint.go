// Package lint is a self-contained static-analysis suite that
// mechanically enforces the pipeline's determinism and hygiene
// invariants: no wall-clock reads outside the injected clocks
// (noclock), no process-global randomness (seededrand), no map
// iteration order leaking into report output (sortedrange),
// context.Context threaded first and passed down (ctxfirst), and
// sentinel errors compared with errors.Is and wrapped with %w
// (wrapsentinel).
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built purely on the standard
// library's go/ast, go/types, and go/importer, because the build
// environment is hermetic: the loader type-checks every package from
// source. cmd/iotlint is the multichecker binary; the self-check test
// runs the whole suite over ./... and asserts zero unsuppressed
// diagnostics, which is what keeps the seeded report byte-identical
// across worker counts as the codebase grows.
//
// Findings are suppressed one line at a time with an annotation that
// must carry a reason:
//
//	deadline := time.Now().Add(d) //lint:allow noclock real handshake deadline needs wall clock
//
// The annotation may sit on the flagged line or on the line directly
// above it. An annotation with no reason, or naming an analyzer that
// does not exist, is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape matches
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the real framework wholesale if the dependency ever becomes
// available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow annotations.
	Name string
	// Doc is a one-paragraph description shown by iotlint -list.
	Doc string
	// Run analyzes one type-checked package, reporting findings
	// through the Pass.
	Run func(*Pass) error
}

// A Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
// Suppressed findings are kept (with the annotation's reason) so tools
// like iotlint -json can show the full picture; only unsuppressed ones
// gate.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string

	// Suppressed marks a finding covered by a well-formed
	// //lint:allow annotation; Reason carries the annotation's text.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A StaleAllowance is a well-formed //lint:allow annotation that
// suppressed nothing: the finding it once covered is gone, so the
// annotation is dead weight and should be removed.
type StaleAllowance struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

func (s StaleAllowance) String() string {
	return fmt.Sprintf("%s:%d:%d: stale lint:allow %s (suppresses nothing): %s",
		s.Pos.Filename, s.Pos.Line, s.Pos.Column, s.Analyzer, s.Reason)
}

// A Report is the full outcome of a lint run: every diagnostic
// (suppressed ones flagged, not dropped) plus the allowances that no
// longer cover anything.
type Report struct {
	Diagnostics []Diagnostic
	Stale       []StaleAllowance
}

// Unsuppressed returns the diagnostics that gate a run.
func (r Report) Unsuppressed() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Suite returns every analyzer in the iotlint suite, in a fixed order:
// the six AST-local analyzers first, then the four flow-sensitive ones
// built on internal/lint/cfg.
func Suite() []*Analyzer {
	return []*Analyzer{
		Noclock(),
		Seededrand(),
		Sortedrange(),
		Ctxfirst(),
		Wrapsentinel(),
		Hotkey(),
		Lockbalance(),
		Goleak(),
		Deferclose(),
		Snapshotsafe(),
	}
}

// allowPrefix introduces a suppression annotation.
const allowPrefix = "//lint:allow "

// allowance is one parsed //lint:allow annotation.
type allowance struct {
	pos      token.Position // of the comment itself
	analyzer string
	reason   string
}

// collectAllowances parses every //lint:allow comment in the package.
func collectAllowances(fset *token.FileSet, files []*ast.File) []allowance {
	var out []allowance
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				out = append(out, allowance{
					pos:      fset.Position(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// applyAllowances marks diagnostics covered by a same-line or
// line-above //lint:allow annotation as suppressed, appends a
// diagnostic for every malformed annotation (missing reason, unknown
// analyzer), and returns the well-formed annotations that suppressed
// nothing. validNames is the set of analyzer names the caller ran.
func applyAllowances(diags []Diagnostic, allows []allowance, validNames map[string]bool) ([]Diagnostic, []StaleAllowance) {
	type key struct {
		file string
		line int
		name string
	}
	type cover struct {
		reason string
		used   *bool
	}
	covered := map[key][]cover{}
	var out []Diagnostic
	var wellFormed []struct {
		a    allowance
		used *bool
	}
	for _, a := range allows {
		if !validNames[a.analyzer] {
			out = append(out, Diagnostic{
				Analyzer: "lintallow",
				Pos:      a.pos,
				Message:  fmt.Sprintf("lint:allow names unknown analyzer %q", a.analyzer),
			})
			continue
		}
		if a.reason == "" {
			out = append(out, Diagnostic{
				Analyzer: "lintallow",
				Pos:      a.pos,
				Message:  fmt.Sprintf("lint:allow %s needs a reason", a.analyzer),
			})
			continue
		}
		// The annotation covers its own line and the line below,
		// so it works both trailing a statement and on its own line.
		used := new(bool)
		c := cover{reason: a.reason, used: used}
		covered[key{a.pos.Filename, a.pos.Line, a.analyzer}] = append(covered[key{a.pos.Filename, a.pos.Line, a.analyzer}], c)
		covered[key{a.pos.Filename, a.pos.Line + 1, a.analyzer}] = append(covered[key{a.pos.Filename, a.pos.Line + 1, a.analyzer}], c)
		wellFormed = append(wellFormed, struct {
			a    allowance
			used *bool
		}{a, used})
	}
	for _, d := range diags {
		if cs := covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; len(cs) > 0 {
			d.Suppressed = true
			d.Reason = cs[0].reason
			for _, c := range cs {
				*c.used = true
			}
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	var stale []StaleAllowance
	for _, w := range wellFormed {
		if !*w.used {
			stale = append(stale, StaleAllowance{Pos: w.a.pos, Analyzer: w.a.analyzer, Reason: w.a.reason})
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out, stale
}

// sortDiagnostics orders findings by file, line, column, analyzer, so
// the linter's own output is deterministic.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Check runs analyzers over pkgs and returns the unsuppressed
// diagnostics, sorted. Malformed //lint:allow annotations are reported
// as diagnostics of the pseudo-analyzer "lintallow".
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	rep, err := CheckFull(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return rep.Unsuppressed(), nil
}

// CheckFull runs analyzers over pkgs and returns the full Report:
// every diagnostic with suppressed ones flagged in place, plus the
// stale //lint:allow annotations that no longer cover anything.
func CheckFull(pkgs []*Package, analyzers []*Analyzer) (Report, error) {
	validNames := map[string]bool{}
	for _, a := range analyzers {
		validNames[a.Name] = true
	}
	var rep Report
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return Report{}, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		allows := collectAllowances(pkg.Fset, pkg.Files)
		marked, stale := applyAllowances(diags, allows, validNames)
		rep.Diagnostics = append(rep.Diagnostics, marked...)
		rep.Stale = append(rep.Stale, stale...)
	}
	sortDiagnostics(rep.Diagnostics)
	return rep, nil
}

// funcOf resolves a call or bare selector/ident to the *types.Func it
// uses, or nil.
func funcOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pkgFunc reports whether fn is the package-level function path.name
// (methods never match).
func pkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != path {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
