package lint

import (
	"path/filepath"
	"testing"
)

// TestSelfCheck runs the full analyzer suite over every package in the
// repository — the same invocation as `go run ./cmd/iotlint ./...` and
// the CI lint gate — and asserts zero unsuppressed diagnostics. This
// is the test that keeps the determinism invariants (no wall clocks,
// no global randomness, no map-order output, contexts threaded,
// errors.Is everywhere) holding as the codebase grows.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check type-checks the whole repo from source; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckDirs(root, []string{"./..."}, Suite())
	if err != nil {
		t.Fatalf("CheckDirs: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d unsuppressed finding(s); fix them or add //lint:allow <analyzer> <reason>", len(diags))
	}
}

// TestLoaderExpand pins the pattern semantics the binary and the
// self-check rely on: ./... covers the repo, testdata and hidden
// directories stay out.
func TestLoaderExpand(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if l.Module != "repro" {
		t.Fatalf("module = %q, want repro", l.Module)
	}
	dirs, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range dirs {
		seen[filepath.ToSlash(d)] = true
		if filepath.Base(d) == "testdata" {
			t.Errorf("Expand included a testdata dir: %s", d)
		}
	}
	// The repo root holds only _test.go files, so it is rightly absent.
	for _, want := range []string{"internal/lint", "internal/core", "cmd/iotlint", "examples/quickstart"} {
		if !seen[want] {
			t.Errorf("Expand missed %s (got %v)", want, dirs)
		}
	}
	if seen["internal/lint/testdata/src/noclock"] {
		t.Error("Expand descended into testdata")
	}
}
