package lint

import (
	"path/filepath"
	"testing"
)

// TestSelfCheck runs the full analyzer suite over every package in the
// repository — the same invocation as `go run ./cmd/iotlint ./...` and
// the CI lint gate — and asserts zero unsuppressed diagnostics and
// zero stale //lint:allow annotations (the -audit-allow mode). This
// is the test that keeps the determinism invariants (no wall clocks,
// no global randomness, no map-order output, contexts threaded,
// errors.Is everywhere, locks balanced, goroutines leashed, resources
// closed) holding as the codebase grows.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check type-checks the whole repo from source; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckDirsFull(root, []string{"./..."}, Suite())
	if err != nil {
		t.Fatalf("CheckDirsFull: %v", err)
	}
	diags := rep.Unsuppressed()
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d unsuppressed finding(s); fix them or add //lint:allow <analyzer> <reason>", len(diags))
	}
	for _, s := range rep.Stale {
		t.Errorf("%s", s)
	}
	if len(rep.Stale) > 0 {
		t.Errorf("%d stale lint:allow annotation(s); the findings they covered are gone, remove them", len(rep.Stale))
	}
}

// TestSharedLoaderMemoizes pins the cross-call cache: CheckDirs used to
// build a fresh loader per call, re-type-checking every shared
// dependency (and the standard library behind it) from source each
// time. Two runs over the same package must cost exactly one set of
// type-checks.
func TestSharedLoaderMemoizes(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := SharedLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckDirs(root, []string{"internal/intern"}, Suite()); err != nil {
		t.Fatalf("first CheckDirs: %v", err)
	}
	warm := l.TypeChecks()
	if warm == 0 {
		t.Fatal("loader reported zero type-checks after a full load")
	}
	if _, err := CheckDirs(root, []string{"internal/intern"}, Suite()); err != nil {
		t.Fatalf("second CheckDirs: %v", err)
	}
	if got := l.TypeChecks(); got != warm {
		t.Fatalf("second CheckDirs type-checked %d package(s); want a pure cache hit", got-warm)
	}
	again, err := SharedLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if again != l {
		t.Fatal("SharedLoader returned a different loader for the same module root")
	}
}

// TestLoaderExpand pins the pattern semantics the binary and the
// self-check rely on: ./... covers the repo, testdata and hidden
// directories stay out.
func TestLoaderExpand(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if l.Module != "repro" {
		t.Fatalf("module = %q, want repro", l.Module)
	}
	dirs, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range dirs {
		seen[filepath.ToSlash(d)] = true
		if filepath.Base(d) == "testdata" {
			t.Errorf("Expand included a testdata dir: %s", d)
		}
	}
	// The repo root holds only _test.go files, so it is rightly absent.
	for _, want := range []string{"internal/lint", "internal/core", "cmd/iotlint", "examples/quickstart"} {
		if !seen[want] {
			t.Errorf("Expand missed %s (got %v)", want, dirs)
		}
	}
	if seen["internal/lint/testdata/src/noclock"] {
		t.Error("Expand descended into testdata")
	}
}
