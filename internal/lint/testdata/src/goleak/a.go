// Package a is the goleak fixture: every goroutine needs a join or
// cancellation discipline — a WaitGroup, a channel it sends on, closes
// or drains, or a context it watches.
package a

import (
	"context"
	"fmt"
	"sync"
)

func waitGroupJoin(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func channelJoin() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return <-ch
}

func closeJoin() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	return done
}

type queue struct{ ch chan int }

// startWorker's goroutine is a named method whose body drains a
// channel: disciplined through the one-level body lookup.
func startWorker(q *queue) {
	go q.loop()
}

func (q *queue) loop() {
	for v := range q.ch {
		_ = v
	}
}

func ctxWorker(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// leashArg hands the stop channel to the goroutine: the spawner holds
// the other end.
func leashArg(stop chan struct{}) {
	go waitStop(stop)
}

func waitStop(stop chan struct{}) {
	<-stop
}

func fireAndForget() {
	go spin() // want `goroutine has no join or cancellation discipline`
}

func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

func anonLeak(n int) {
	go func() { // want `goroutine has no join or cancellation discipline`
		for i := 0; i < n; i++ {
			_ = i
		}
	}()
}

// externalLeak: an external callee with no leash argument — nothing
// ties the goroutine to its owner.
func externalLeak() {
	go fmt.Println("fire and forget") // want `goroutine has no join or cancellation discipline`
}

func debugServer() {
	//lint:allow goleak fixture: serves until process exit by design
	go fmt.Println("debug listener")
}
