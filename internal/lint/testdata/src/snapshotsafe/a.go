// Package a is the snapshotsafe fixture: a value published through
// atomic.Pointer.Store, or obtained from Load, is shared with lock-free
// readers and must never be written through again.
package a

import "sync/atomic"

type snap struct {
	epoch int
	names []string
}

type holder struct {
	cur atomic.Pointer[snap]
}

// good: build fully, then publish.
func good(h *holder) {
	s := &snap{epoch: 1}
	s.names = append(s.names, "a")
	h.cur.Store(s)
}

func badAfterStore(h *holder) {
	s := &snap{}
	h.cur.Store(s)
	s.epoch = 2 // want `write through s after it was published via atomic.Pointer`
}

func badAfterLoad(h *holder) {
	s := h.cur.Load()
	s.epoch++ // want `write through s after it was published via atomic.Pointer`
}

func readOnlyLoad(h *holder) int {
	s := h.cur.Load()
	return s.epoch
}

// copyOnWrite is the blessed epoch pattern: read the old snapshot,
// build a fresh value, publish that.
func copyOnWrite(h *holder) {
	old := h.cur.Load()
	next := &snap{epoch: old.epoch + 1}
	h.cur.Store(next)
}

func aliasBad(h *holder) {
	s := &snap{}
	h.cur.Store(s)
	t := s
	t.epoch = 3 // want `write through t after it was published via atomic.Pointer`
}

// rebindClean: rebinding the variable to a fresh value clears the
// taint; the new value may be mutated until it is published.
func rebindClean(h *holder) {
	s := &snap{}
	h.cur.Store(s)
	s = &snap{}
	s.epoch = 9
	h.cur.Store(s)
}

func indexWriteBad(h *holder) {
	s := h.cur.Load()
	s.names[0] = "x" // want `write through s after it was published via atomic.Pointer`
}

func branchBad(h *holder, c bool) {
	s := h.cur.Load()
	if c {
		return
	}
	s.epoch = 4 // want `write through s after it was published via atomic.Pointer`
}

func suppressedWrite(h *holder) {
	s := h.cur.Load()
	s.epoch = 7 //lint:allow snapshotsafe fixture demonstrates suppression
}
