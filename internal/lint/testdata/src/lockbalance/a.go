// Package a is the lockbalance fixture: every Lock must reach an
// Unlock on all paths (defer-aware), no path may re-Lock a held mutex,
// and one level of intra-package lock helpers is summarized.
package a

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (b *box) good() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) goodDefer() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) branchBalanced(c bool) int {
	b.mu.Lock()
	if c {
		n := b.n
		b.mu.Unlock()
		return n
	}
	b.mu.Unlock()
	return 0
}

func (b *box) leakOnEarlyReturn(c bool) {
	b.mu.Lock() // want `b.mu.Lock\(\) in leakOnEarlyReturn is not released on every path`
	if c {
		return
	}
	b.mu.Unlock()
}

func (b *box) doubleLock(c bool) {
	b.mu.Lock()
	if c {
		b.mu.Lock() // want `b.mu.Lock\(\) while b.mu may already be held`
	}
	b.n++
	b.mu.Unlock()
}

func (b *box) panicPathExempt(c bool) {
	b.mu.Lock()
	if c {
		panic("invariant broken")
	}
	b.mu.Unlock()
}

func (b *box) readers() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

func (b *box) rlockLeak(c bool) int {
	b.rw.RLock() // want `b.rw.RLock\(\) in rlockLeak is not released on every path`
	if c {
		return 0
	}
	n := b.n
	b.rw.RUnlock()
	return n
}

func (b *box) loopBalanced(xs []int) {
	for range xs {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	}
}

func (b *box) deferredLitUnlock() {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
	b.n++
}

// lock/unlock helpers: their unconditional receiver-rooted ops are
// summarized, so callers inherit the effects; the helpers themselves
// are deliberate handoffs and stay silent.
func (b *box) lock()   { b.mu.Lock() }
func (b *box) unlock() { b.mu.Unlock() }

func (b *box) helperBalanced() {
	b.lock()
	b.n++
	b.unlock()
}

func (b *box) helperLeak(c bool) {
	b.lock() // want `b.mu.Lock\(\) in helperLeak is not released on every path`
	if c {
		return
	}
	b.unlock()
}

func (b *box) helperDouble() {
	b.lock()
	b.lock() // want `b.mu.Lock\(\) while b.mu may already be held`
	b.n++
	b.unlock()
}

type unlocker interface{ release() }

func (b *box) viaInterface(u unlocker) {
	b.mu.Lock() //lint:allow lockbalance u.release unlocks on the caller's behalf; beyond one-level summaries
	b.n++
	u.release()
}
