// Package a is the noclock fixture: wall-clock reads outside the
// exempted packages must be flagged, derived time arithmetic must not.
package a

import "time"

func bad() time.Duration {
	start := time.Now()                            // want `time\.Now reads the wall clock`
	deadline := time.Until(start.Add(time.Second)) // want `time\.Until reads the wall clock`
	_ = deadline
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// A bare function-value reference reads the clock at every later call
// site, so it is just as nondeterministic as a direct call.
var clockFn = time.Now // want `time\.Now reads the wall clock`

func ok() time.Time {
	t := time.Unix(0, 0)
	t = t.Add(time.Second).Round(time.Minute)
	_ = time.Date(2023, time.October, 24, 0, 0, 0, 0, time.UTC)
	return t
}

func suppressed() time.Time {
	//lint:allow noclock fixture demonstrates an annotated wall-clock read
	return time.Now()
}

func suppressedTrailing() time.Time {
	return time.Now() //lint:allow noclock fixture demonstrates a trailing annotation
}

// The service-daemon pattern: operator-facing wall-clock telemetry
// (request latency histograms) is a legitimate read, carried by a
// reasoned annotation on each of the paired Now/Since calls.
func requestLatency(observe func(float64)) {
	start := time.Now() //lint:allow noclock HTTP request latency is operator telemetry, never analysis input
	defer func() {
		observe(time.Since(start).Seconds()) //lint:allow noclock paired with the wall-clock start above
	}()
}
