// Package obs stands in for the real internal/obs: any package whose
// path ends in internal/obs owns observability timing and may read the
// wall clock freely, so nothing in this file is flagged.
package obs

import "time"

func Base() time.Time { return time.Now() }

func Elapsed(base time.Time) time.Duration { return time.Since(base) }
