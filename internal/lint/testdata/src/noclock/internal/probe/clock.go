// clock.go in a package path ending internal/probe is the production
// implementation of the injectable Clock; its wall-clock read is the
// one place the real time enters the engine, so it is exempt.
package probe

import "time"

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }
