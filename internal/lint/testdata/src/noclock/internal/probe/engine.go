// engine.go sits in the same exempted package as clock.go, but the
// exemption is per-file: only clock.go may read the wall clock.
package probe

import "time"

func attempt() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}
