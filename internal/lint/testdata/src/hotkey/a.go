// Package a is the hotkey fixture: maps must not be indexed by a
// direct Fingerprint.Key() call — Key allocates per invocation.
package a

type Fingerprint struct{ v int }

func (f Fingerprint) Key() string { return "k" }

type entry struct{ n int }

type other struct{}

func (o other) Key() string { return "o" }

func lookup(m map[string]entry, f Fingerprint) entry {
	return m[f.Key()] // want `map indexed by Fingerprint\.Key`
}

func store(m map[string]bool, f *Fingerprint) {
	m[f.Key()] = true // want `map indexed by Fingerprint\.Key`
}

func probe(m map[string]entry, f Fingerprint) bool {
	_, ok := m[f.Key()] // want `map indexed by Fingerprint\.Key`
	return ok
}

func hoisted(m map[string]entry, fs []Fingerprint) int {
	n := 0
	for _, f := range fs {
		k := f.Key() // hoisted once per element, visible to the reader
		if _, ok := m[k]; ok {
			n++
		}
	}
	return n
}

func otherReceiver(m map[string]entry, o other) entry {
	return m[o.Key()] // a different type's Key: clean
}

func notAMap(s []entry, f Fingerprint) entry {
	_ = f.Key()
	return s[0]
}

func allowed(m map[string]entry, f Fingerprint) entry {
	//lint:allow hotkey one-shot diagnostic path, not a loop
	return m[f.Key()]
}
