// Package a is the ctxfirst fixture: contexts come first and get
// passed down; minting context.Background() mid-call detaches callees
// from cancellation.
package a

import "context"

func bad(name string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = name
	use(ctx)
	return nil
}

func detaches(ctx context.Context) {
	use(context.Background()) // want `pass it down instead of context\.Background`
	use(context.TODO())       // want `pass it down instead of context\.TODO`
	use(ctx)
}

func nilGuard(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	use(ctx)
}

func ok(ctx context.Context, name string) {
	_ = name
	use(ctx)
}

// Functions without a context parameter may create roots.
func root() context.Context {
	return context.Background()
}

// Closures are skipped: they often outlive the call.
func spawns(ctx context.Context) {
	use(ctx)
	go func() {
		use(context.Background())
	}()
}

func suppressed(ctx context.Context) {
	use(context.Background()) //lint:allow ctxfirst fixture demonstrates a deliberate detach
	use(ctx)
}

func use(context.Context) {}
