// Package a is the wrapsentinel fixture: sentinel errors are matched
// with errors.Is and wrapped with %w, never compared with == or
// flattened through %v.
package a

import (
	"errors"
	"fmt"
)

var (
	ErrBadWorkers = errors.New("bad workers")
	ErrTruncated  = errors.New("truncated")

	// errInternal is unexported and not sentinel-cased; comparisons
	// against it are the package's own business.
	errInternal = errors.New("internal")
)

func compare(err error) bool {
	if err == ErrBadWorkers { // want `use errors\.Is`
		return true
	}
	return ErrTruncated != err // want `use errors\.Is`
}

func compareOK(err error) bool {
	if err == nil {
		return false
	}
	if err == errInternal {
		return true
	}
	return errors.Is(err, ErrBadWorkers)
}

func wrap(err error) error {
	return fmt.Errorf("probe: %v", err) // want `wrap it with %w`
}

func wrapString(err error) error {
	return fmt.Errorf("probe %s failed: %s", "x", err) // want `wrap it with %w`
}

func wrapOK(err error) error {
	return fmt.Errorf("probe: %w: attempt %d", err, 3)
}

func formatNonError(n int) error {
	return fmt.Errorf("n = %v (%s)", n, "units")
}

func stringified(err error) string {
	// Not fmt.Errorf: producing a string loses no chain.
	return fmt.Sprintf("probe: %v", err)
}

func suppressed(err error) bool {
	return err == ErrBadWorkers //lint:allow wrapsentinel fixture demonstrates an identity comparison
}
