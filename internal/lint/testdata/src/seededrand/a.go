// Package a is the seededrand fixture: top-level math/rand calls draw
// from the process-global source and must be flagged; a threaded
// *rand.Rand and crypto/rand stay legal.
package a

import (
	crand "crypto/rand"
	"math/rand"
)

func bad(xs []int) int {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `process-global rand source`
	rand.Seed(42)                                                         // want `process-global rand source`
	_ = rand.Float64()                                                    // want `process-global rand source`
	return rand.Intn(6)                                                   // want `process-global rand source`
}

// A bare reference smuggles the global source just like a call.
var pick = rand.Intn // want `process-global rand source`

func threaded(r *rand.Rand) int {
	r2 := rand.New(rand.NewSource(1))
	return r.Intn(6) + r2.Intn(6)
}

func cryptoIsFine() byte {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return b[0]
}

func suppressed() int {
	return rand.Intn(6) //lint:allow seededrand fixture demonstrates an annotated global draw
}
