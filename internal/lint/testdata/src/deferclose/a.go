// Package a is the deferclose fixture: connections, listeners and
// files must be closed on every path out of the acquiring function,
// unless ownership visibly moves (return, store, send, pass, go).
package a

import (
	"net"
	"os"
)

func deferClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func explicitClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

func leakOnBranch(path string, c bool) error {
	f, err := os.Open(path) // want `f \(os.File\) is not closed on every path to return in leakOnBranch`
	if err != nil {
		return err
	}
	if c {
		return nil
	}
	return f.Close()
}

func connLeak(addr string) error {
	c, err := net.Dial("tcp", addr) // want `c \(net.Conn\) is not closed on every path to return in connLeak`
	if err != nil {
		return err
	}
	_ = c.RemoteAddr()
	return nil
}

func listenerLeak() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0") // want `ln \(net.Listener\) is not closed on every path to return in listenerLeak`
	if err != nil {
		return err
	}
	_ = ln.Addr()
	return nil
}

// returned: ownership moves to the caller.
func returned(path string) (*os.File, error) {
	f, err := os.Open(path)
	return f, err
}

type holder struct{ c net.Conn }

// stored: ownership moves to the struct.
func keep(h *holder, addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	h.c = c
	return nil
}

// handOff: the goroutine owns the conn now.
func handOff(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		c.Close()
	}()
	return nil
}

// sent: the receiver owns the conn.
func sent(addr string, sink chan net.Conn) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	sink <- c
	return nil
}

// passed: the callee takes responsibility.
func passed(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return consume(c)
}

func consume(c net.Conn) error {
	return c.Close()
}

// eqlIdiom: the err == nil guard is the same idiom inverted.
func eqlIdiom(path string) error {
	f, err := os.Open(path)
	if err == nil {
		defer f.Close()
		return readAll(f)
	}
	return err
}

func readAll(f *os.File) error {
	_, err := f.Stat()
	return err
}

// panicPath: acquisitions on paths that end in panic are exempt.
func panicPath(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	return f
}

func intentional(addr string) {
	c, _ := net.Dial("tcp", addr) //lint:allow deferclose fixture demonstrates suppression
	_ = c.RemoteAddr()
}
