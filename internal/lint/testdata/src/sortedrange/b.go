// b.go exercises the interprocedural half of sortedrange: map-order
// taint flowing through one level of intra-package calls.
package a

import (
	"fmt"
	"io"
	"sort"
)

// keysOf returns the collected keys unsorted; judgment belongs to its
// callers. One sorts (clean), one writes (flagged at the write), so
// the helper itself stays silent.
func keysOf(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func callerSorts(m map[string]int) []string {
	ks := keysOf(m)
	sort.Strings(ks)
	return ks
}

func callerWritesLoop(w io.Writer, m map[string]int) {
	ks := keysOf(m)
	for _, k := range ks { // want `ks returned by keysOf collects map-range elements unsorted and is written here`
		fmt.Fprintln(w, k)
	}
}

// valsOf feeds a writer directly: flagged at the writer call.
func valsOf(m map[string]int) []int {
	var vs []int
	for _, v := range m {
		vs = append(vs, v)
	}
	return vs
}

func callerWritesDirect(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, valsOf(m)) // want `result of valsOf collects map-range elements unsorted and is written here`
}

// emit is a sink: it writes its slice parameter in iteration order
// without sorting first.
func emit(w io.Writer, items []string) {
	for _, it := range items {
		fmt.Fprintln(w, it)
	}
}

// namesOf's result reaches output through the emit sink.
func namesOf(m map[string]bool) []string {
	var ns []string
	for n := range m {
		ns = append(ns, n)
	}
	return ns
}

func callerViaSink(w io.Writer, m map[string]bool) {
	ns := namesOf(m)
	emit(w, ns) // want `ns returned by namesOf collects map-range elements unsorted and is written here`
}

// ExportedKeys escapes the package: unseen callers exist, so the
// collection site itself is flagged.
func ExportedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `ks collects map-range elements, is returned unsorted from ExportedKeys, and it escapes through the exported API`
	}
	return ks
}

// sortedSink sorts before writing, so passing a tainted result into it
// through sortedEmit is clean — sortedEmit is not a sink.
func sortedEmit(w io.Writer, items []string) {
	sort.Strings(items)
	for _, it := range items {
		fmt.Fprintln(w, it)
	}
}

func idsOf(m map[string]int) []string {
	var ids []string
	for k := range m {
		ids = append(ids, k)
	}
	return ids
}

func callerViaSortedSink(w io.Writer, m map[string]int) {
	ids := idsOf(m)
	sortedEmit(w, ids)
}
