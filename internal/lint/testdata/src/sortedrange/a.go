// Package a is the sortedrange fixture: map iteration order must not
// escape into output, either by writing directly from the loop body or
// by collecting into a slice that is never sorted.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func directWrite(w io.Writer, m map[string]int) {
	for k, v := range m { // want `range over map writes output in map iteration order`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func builderWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `range over map writes output in map iteration order`
		b.WriteString(k)
	}
	return b.String()
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys collects map-range elements, is returned unsorted from collectNoSort, and no intra-package caller sorts it`
	}
	return keys
}

func collectNoSortLocal(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys collects map-range elements and is never sorted`
	}
	return len(keys)
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type row struct{ name string }

func collectSortSlice(m map[string]row) []row {
	var rows []row
	for _, r := range m {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

func counting(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func buildingAnotherMap(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

func localScratch(m map[string][]string) int {
	n := 0
	for _, vs := range m {
		var dedup []string
		for _, v := range vs {
			dedup = append(dedup, v)
		}
		n += len(dedup)
	}
	return n
}

func suppressed(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) //lint:allow sortedrange fixture demonstrates commutative aggregation
	}
	return vals
}
