// Package cfgfix holds small functions exercising the control-flow
// shapes the cfg builder must get right. The cfg tests parse this file
// and assert structural properties of each function's graph; it is
// never compiled into the repository build (testdata is invisible to
// the go tool and to the lint loader's Expand).
package cfgfix

type res struct{}

func open(string) *res { return &res{} }
func (*res) close()    {}

// forNoPost: a for without condition or post; the only exit is break.
func forNoPost(n int) int {
	i := 0
	for {
		if i >= n {
			break
		}
		i++
	}
	return i
}

// spinForever: for{} with no break — the exit block must be unreachable.
func spinForever() {
	for {
	}
}

// selectNoDefault blocks until a case is ready: the select head must
// have exactly one edge per clause and none to the code after it.
func selectNoDefault(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// selectWithDefault may fall through immediately.
func selectWithDefault(a chan int) int {
	out := 0
	select {
	case v := <-a:
		out = v
	default:
	}
	return out
}

// labeledBreakContinue: break outer must leave both loops, continue
// outer must re-enter the outer range head.
func labeledBreakContinue(m [][]int) int {
	total := 0
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			if v == 0 {
				continue outer
			}
			total += v
		}
	}
	return total
}

// deferInLoop: the defer sits on the loop's back-edge cycle, so a
// defer-aware analysis sees it accumulate per iteration.
func deferInLoop(paths []string) {
	for _, p := range paths {
		f := open(p)
		defer f.close()
	}
}

// deadAfterPanic: the assignment after panic is unreachable, and the
// panicking path must not reach the exit block.
func deadAfterPanic(x int) int {
	if x < 0 {
		panic("negative")
		x = 0
	}
	return x
}

// deadAfterReturn: statements after a return are unreachable.
func deadAfterReturn() int {
	return 1
	return 2
}

// gotoBack: a goto to an earlier label forms a loop.
func gotoBack(n int) int {
	i := 0
again:
	i++
	if i < n {
		goto again
	}
	return i
}

// fallthroughChain: fallthrough edges link consecutive case clauses.
func fallthroughChain(x int) int {
	out := 0
	switch x {
	case 0:
		out++
		fallthrough
	case 1:
		out++
	default:
		out--
	}
	return out
}
