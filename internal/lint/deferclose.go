package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/cfg"
)

// closeTracked maps the named types whose values must be closed on
// every path to a short label for diagnostics. http.Response is special:
// its Body, not the value itself, carries the Close.
var closeTracked = map[[2]string]string{
	{"net", "Conn"}:           "net.Conn",
	{"net", "Listener"}:       "net.Listener",
	{"os", "File"}:            "os.File",
	{"crypto/tls", "Conn"}:    "tls.Conn",
	{"net/http", "Response"}:  "http.Response",
	{"net/smtp", "Client"}:    "smtp.Client",
	{"net/textproto", "Conn"}: "textproto.Conn",
}

// closeFact tracks variables holding an open resource: var -> info
// about the acquisition.
type closeFact map[*types.Var]closeInfo

type closeInfo struct {
	pos    token.Pos  // acquisition site
	label  string     // human type label
	errVar *types.Var // error co-assigned at acquisition, if any
}

func (f closeFact) clone() closeFact {
	out := make(closeFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Deferclose returns the flow-sensitive analyzer that demands
// connections, listeners, files and response bodies be closed on every
// path out of the function that acquired them. A resource is considered
// handed off — and the obligation discharged — when it is returned,
// sent on a channel, stored through a field or into a composite, passed
// to another call, given to a goroutine, or captured by a function
// literal. The `c, err := dial(); if err != nil { return err }` idiom is
// understood: the error-checked branch drops the obligation because a
// failed acquisition returns no resource. Paths ending in panic or
// os.Exit are exempt.
func Deferclose() *Analyzer {
	a := &Analyzer{
		Name: "deferclose",
		Doc: "flags net.Conn/net.Listener/os.File/http response values not closed on " +
			"every path to return; escape (return, send, store, pass) discharges " +
			"the obligation",
	}
	a.Run = func(pass *Pass) error {
		noRet := noReturnPredicate(pass)
		for _, fb := range functionBodies(pass) {
			checkDeferClose(pass, fb, noRet)
		}
		return nil
	}
	return a
}

// trackedLabel reports whether t is (a pointer to) one of the tracked
// resource types.
func trackedLabel(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	pkg, name, ok := namedTypeName(t)
	if !ok {
		return "", false
	}
	label, ok := closeTracked[[2]string{pkg, name}]
	return label, ok
}

func objVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

func checkDeferClose(pass *Pass, fb funcBody, noRet func(*ast.CallExpr) bool) {
	g := buildGraph(pass, fb.body, noRet)
	info := pass.TypesInfo

	// release removes every tracked var referenced anywhere under n:
	// appearing in a call argument, a return, a send, a composite or a
	// closure means ownership moved.
	release := func(fact closeFact, n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					delete(fact, v)
				}
			}
			return true
		})
	}

	// closeCall returns the var closed by a c.Close() / resp.Body.Close()
	// call, or nil.
	closeCall := func(call *ast.CallExpr) *types.Var {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return nil
		}
		return rootVar(info, sel.X)
	}

	handleCall := func(fact closeFact, call *ast.CallExpr) {
		if v := closeCall(call); v != nil {
			delete(fact, v)
			return
		}
		// Any tracked var passed along (argument, or captured by a
		// literal used as the function) escapes.
		for _, arg := range call.Args {
			release(fact, arg)
		}
		if fl, ok := call.Fun.(*ast.FuncLit); ok {
			release(fact, fl)
		}
	}

	transfer := func(b *cfg.Block, fact closeFact) closeFact {
		out := fact.clone()
		for _, n := range b.Nodes {
			switch s := n.(type) {
			case *ast.AssignStmt:
				// Aliasing or storing a tracked var discharges it.
				for _, rhs := range s.Rhs {
					if _, isCall := rhs.(*ast.CallExpr); !isCall {
						release(out, rhs)
					} else {
						// The call's arguments may consume resources.
						handleCall(out, rhs.(*ast.CallExpr))
					}
				}
				// Storing through a selector/index also escapes the
				// stored value (handled above); a plain rebind of a
				// tracked var drops the old obligation silently only
				// if something else closed it — keep it simple and
				// treat rebinding as a fresh acquisition below.
				if len(s.Rhs) == 1 {
					if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
						var errV *types.Var
						for _, lh := range s.Lhs {
							if v := objVar(info, lh); v != nil && v.Type() != nil {
								if _, name, ok := namedTypeName(v.Type()); ok && name == "error" {
									errV = v
								} else if types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
									errV = v
								}
							}
						}
						for _, lh := range s.Lhs {
							v := objVar(info, lh)
							if v == nil {
								continue
							}
							if label, tracked := trackedLabel(v.Type()); tracked {
								out[v] = closeInfo{pos: call.Pos(), label: label, errVar: errV}
							}
						}
					}
				}
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					handleCall(out, call)
				}
			case *ast.DeferStmt:
				handleCall(out, s.Call)
			case *ast.GoStmt:
				release(out, s.Call)
			case *ast.SendStmt:
				release(out, s.Value)
			case *ast.ReturnStmt:
				for _, r := range s.Results {
					release(out, r)
				}
			case *ast.DeclStmt:
				// var c net.Conn = dial() — rare; treat initializers
				// with tracked types like assignments.
				if gd, ok := s.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, val := range vs.Values {
								release(out, val)
							}
						}
					}
				}
			case *ast.RangeStmt:
				release(out, s.X)
			}
		}
		return out
	}

	in := cfg.Forward(g, cfg.Problem{
		Entry: closeFact{},
		Transfer: func(b *cfg.Block, in any) any {
			return transfer(b, in.(closeFact))
		},
		Branch: func(cond ast.Expr, whenTrue bool, out any) any {
			// `c, err := acquire(); if err != nil { ... }`: on the
			// err-is-non-nil edge the acquisition failed and there is
			// nothing to close.
			be, ok := cond.(*ast.BinaryExpr)
			if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
				return out
			}
			var errSide ast.Expr
			if isNilIdent(info, be.Y) {
				errSide = be.X
			} else if isNilIdent(info, be.X) {
				errSide = be.Y
			} else {
				return out
			}
			errV := objVar(info, errSide)
			if errV == nil {
				return out
			}
			errNonNil := (be.Op == token.NEQ) == whenTrue
			if !errNonNil {
				return out
			}
			fact := out.(closeFact)
			refined := fact.clone()
			for v, ci := range fact {
				if ci.errVar == errV {
					delete(refined, v)
				}
			}
			return refined
		},
		Join: func(a, b any) any {
			fa, fb := a.(closeFact), b.(closeFact)
			out := fa.clone()
			for v, ci := range fb {
				if cur, ok := out[v]; !ok || ci.pos < cur.pos {
					out[v] = ci
				}
			}
			return out
		},
		Equal: func(a, b any) bool {
			fa, fb := a.(closeFact), b.(closeFact)
			if len(fa) != len(fb) {
				return false
			}
			for v, ci := range fa {
				if cj, ok := fb[v]; !ok || ci.pos != cj.pos {
					return false
				}
			}
			return true
		},
	})

	// Report each resource still open on an edge into Exit, once per
	// acquisition site.
	type leak struct {
		pos   token.Pos
		name  string
		label string
	}
	reported := map[token.Pos]bool{}
	var leaks []leak
	for _, b := range g.Blocks {
		fact, ok := in[b]
		if !ok || !b.Live {
			continue
		}
		exits := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		out := transfer(b, fact.(closeFact))
		for v, ci := range out {
			if !reported[ci.pos] {
				reported[ci.pos] = true
				leaks = append(leaks, leak{pos: ci.pos, name: v.Name(), label: ci.label})
			}
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		pass.Reportf(l.pos, "%s", fmt.Sprintf(
			"%s (%s) is not closed on every path to return in %s; defer the Close or close it before returning",
			l.name, l.label, fb.name))
	}
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
