package lint

import (
	"go/ast"
	"go/types"
)

// Hotkey returns the analyzer that catches the allocation pattern PR 7
// removed from the ingest and match hot loops: indexing a map with a
// direct Fingerprint.Key() call. Key() marshals the fingerprint into a
// fresh string on every invocation (two allocations per lookup), so a
// map probe inside a per-record loop pays that cost once per record.
// The interned form (fingerprint.Interned) is a comparable 12-byte
// value computed once per distinct fingerprint; hot maps key on it, or
// on a hoisted key string computed outside the loop.
//
// Only the direct call-in-index shape is flagged — `m[f.Key()]` — a
// Key() hoisted into a variable before the loop is clean.
func Hotkey() *Analyzer {
	a := &Analyzer{
		Name: "hotkey",
		Doc: "flags map indexing keyed by a direct Fingerprint.Key() call; Key allocates " +
			"per invocation — intern the fingerprint (fingerprint.Interned) or hoist " +
			"the key out of the loop",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ix, ok := n.(*ast.IndexExpr)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[ix.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				call, ok := ix.Index.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcOf(pass.TypesInfo, call.Fun)
				if fn == nil || fn.Name() != "Key" {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil || !isFingerprintType(sig.Recv().Type()) {
					return true
				}
				pass.Reportf(ix.Index.Pos(),
					"map indexed by Fingerprint.Key(), which allocates per call; "+
						"intern the fingerprint (fingerprint.Interned) or hoist the key")
				return true
			})
		}
		return nil
	}
	return a
}

// isFingerprintType matches a (possibly pointer-wrapped) named type
// called Fingerprint — by name, so the fixture's local stand-in type
// exercises the same path as repro/internal/fingerprint.Fingerprint.
func isFingerprintType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Fingerprint"
}
