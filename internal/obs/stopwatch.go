package obs

import "time"

// A Stopwatch measures one wall-clock interval for metrics. It exists
// so instrumentation outside this package never reads the wall clock
// directly: the noclock analyzer (internal/lint) reserves
// time.Now/time.Since to internal/obs and the probe engine's injected
// Clock, which is what keeps seeded pipeline output independent of
// when the run happened. Durations observed through a Stopwatch feed
// histograms only — never report content.
type Stopwatch struct{ start time.Time }

// NewStopwatch starts timing now.
func NewStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Seconds returns the wall-clock seconds elapsed since the stopwatch
// started.
func (s Stopwatch) Seconds() float64 { return time.Since(s.start).Seconds() }

// Elapsed returns the wall-clock time elapsed since the stopwatch
// started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
