package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry("iotls")
	c := r.Counter("probe_attempts_total", L("vantage", "new-york"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	// Same (name, labels) resolves to the same series regardless of label
	// order.
	same := r.Counter("probe_attempts_total", L("vantage", "new-york"))
	if same != c {
		t.Fatal("same series resolved to a different counter")
	}
	other := r.Counter("probe_attempts_total", L("vantage", "frankfurt"))
	if other == c {
		t.Fatal("different labels resolved to the same counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry("t")
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.05} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-5.605) > 1e-9 {
		t.Fatalf("Sum = %g, want 5.605", got)
	}
	want := []int64{1, 2, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestNilHandlesNoOpWithoutAllocation(t *testing.T) {
	var r *Registry
	var c *Counter
	var h *Histogram
	var tr *Tracer
	var sp *Span
	allocs := testing.AllocsPerRun(100, func() {
		r.Counter("x").Inc()
		c.Add(3)
		h.Observe(1)
		sp = tr.Root().Child("stage")
		sp.SetCount("items", 9)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op observability allocated %v times per op, want 0", allocs)
	}
	if c.Value() != 0 || h.Count() != 0 || sp != nil {
		t.Fatal("nil handles must stay inert")
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry("iotls")
	r.Counter("probe_attempts_total", L("vantage", "new-york")).Add(7)
	r.Counter("probe_attempts_total", L("vantage", "frankfurt")).Add(3)
	r.Counter("ingest_records_total").Add(1000)
	h := r.Histogram("probe_handshake_seconds", []float64{0.01, 0.1}, L("vantage", "new-york"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE iotls_probe_attempts_total counter",
		`iotls_probe_attempts_total{vantage="new-york"} 7`,
		"# TYPE iotls_probe_handshake_seconds histogram",
		`iotls_probe_handshake_seconds_bucket{vantage="new-york",le="0.01"} 1`,
		`iotls_probe_handshake_seconds_bucket{vantage="new-york",le="+Inf"} 3`,
		`iotls_probe_handshake_seconds_count{vantage="new-york"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := SumSeries(samples, "iotls_probe_attempts_total"); got != 10 {
		t.Fatalf("attempts across vantages = %g, want 10", got)
	}
	if got := samples["iotls_ingest_records_total"]; got != 1000 {
		t.Fatalf("ingest_records_total = %g, want 1000", got)
	}
	if got := samples[`iotls_probe_handshake_seconds_bucket{vantage="new-york",le="0.1"}`]; got != 2 {
		t.Fatalf("cumulative le=0.1 bucket = %g, want 2", got)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"novalue", "name{unbalanced 3", "name notanumber"} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseText(%q) accepted garbage", bad)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry("t")
	r.Counter("jobs_total").Add(4)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count   int64            `json:"count"`
			Buckets map[string]int64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON exposition: %v\n%s", err, buf.String())
	}
	if parsed.Counters["t_jobs_total"] != 4 {
		t.Fatalf("counters = %v", parsed.Counters)
	}
	if parsed.Histograms["t_lat"].Count != 1 || parsed.Histograms["t_lat"].Buckets["1"] != 1 {
		t.Fatalf("histograms = %v", parsed.Histograms)
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTracer("run")
	a := tr.Root().Child("dataset")
	a.SetCount("records", 11439)
	a.End()
	b := tr.Root().Child("probe")
	c := b.Child("vantage-sweep")
	c.End()
	b.End()
	tr.Root().End()

	root := tr.Root()
	if root.Name() != "run" {
		t.Fatalf("root name = %q", root.Name())
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "dataset" || kids[1].Name() != "probe" {
		t.Fatalf("children = %v", kids)
	}
	if got := kids[0].Counts(); len(got) != 1 || got[0] != (Count{"records", 11439}) {
		t.Fatalf("counts = %v", got)
	}
	if len(kids[1].Children()) != 1 {
		t.Fatal("nested child lost")
	}

	var buf bytes.Buffer
	tr.WriteTree(&buf)
	text := buf.String()
	if !strings.Contains(text, "records=11439") || !strings.Contains(text, "  dataset") ||
		!strings.Contains(text, "    vantage-sweep") {
		t.Fatalf("tree rendering:\n%s", text)
	}
}

func TestSpanBeginRestampsStart(t *testing.T) {
	tr := NewTracer("run")
	sp := tr.Root().Child("later")
	time.Sleep(5 * time.Millisecond)
	sp.Begin()
	sp.End()
	if d := sp.Duration(); d > 4*time.Millisecond {
		t.Fatalf("Begin did not restamp start: duration %v", d)
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	r := NewRegistry("iotls")
	r.Counter("probe_attempts_total").Add(2)
	srv, addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "iotls_probe_attempts_total 2") {
		t.Fatalf("/metrics body:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, "iotls_probe_attempts_total") {
		t.Fatalf("/metrics.json body:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
