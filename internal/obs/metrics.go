package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension on a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds counter and histogram families under a common namespace
// prefix. Lookups are synchronized; the returned handles update with a
// single atomic op, so instrumented code resolves its series once and
// then records lock-free. A nil *Registry hands out nil handles, which
// no-op.
type Registry struct {
	namespace string

	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// family groups every labeled series of one metric name.
type family struct {
	name    string
	isHist  bool
	isGauge bool
	bounds  []float64

	mu     sync.Mutex
	series map[string]any // labelKey -> *Counter | *Gauge | *Histogram
	keys   []string
}

// NewRegistry creates a registry. Every metric name is prefixed with
// namespace + "_" (no prefix when namespace is empty).
func NewRegistry(namespace string) *Registry {
	return &Registry{namespace: namespace, families: map[string]*family{}}
}

func (r *Registry) fullName(name string) string {
	if r.namespace == "" {
		return name
	}
	return r.namespace + "_" + name
}

func (r *Registry) family(name string, isHist, isGauge bool, bounds []float64) *family {
	full := r.fullName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[full]
	if f == nil {
		f = &family{name: full, isHist: isHist, isGauge: isGauge, bounds: bounds, series: map[string]any{}}
		r.families[full] = f
		r.names = append(r.names, full)
	}
	return f
}

// labelKey renders labels canonically: sorted by key, escaped values.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter series for (name, labels), creating it on
// first use. A nil registry returns a nil counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, false, false, nil)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[key].(*Counter); ok {
		return c
	}
	c := &Counter{}
	f.series[key] = c
	f.keys = append(f.keys, key)
	return c
}

// Gauge returns the gauge series for (name, labels), creating it on
// first use. A nil registry returns a nil gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, false, true, nil)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.series[key].(*Gauge); ok {
		return g
	}
	g := &Gauge{}
	f.series[key] = g
	f.keys = append(f.keys, key)
	return g
}

// Histogram returns the histogram series for (name, labels), creating it
// with the given upper-bound buckets on first use (bounds must be sorted
// ascending; the +Inf bucket is implicit). A nil registry returns nil.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, true, false, bounds)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.series[key].(*Histogram); ok {
		return h
	}
	h := newHistogram(f.bounds)
	f.series[key] = h
	f.keys = append(f.keys, key)
	return h
}

// Counter is a monotonically increasing int64. The nil counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Gauge is a settable int64 level (queue depth, epoch number, snapshot
// age). Unlike a Counter it may go down. The nil gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram counts observations into cumulative-style buckets and tracks
// sum and count. The nil histogram no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count is the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the total of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns per-bucket (non-cumulative) counts; the final
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// DurationBuckets is the default handshake/stage latency bucketing, in
// seconds: 1ms .. 10s, roughly geometric.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
