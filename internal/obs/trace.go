// Package obs is the study's observability substrate: hierarchical
// tracing spans over a monotonic clock, a metrics registry of counters
// and histograms with Prometheus-text and JSON exposition, and the
// expvar/pprof wiring the binaries expose behind -pprof.
//
// Everything is nil-safe: a nil *Tracer, *Span, *Registry, *Counter, or
// *Histogram is a valid zero-allocation no-op, so instrumented code paths
// never branch on "is observability enabled" and pay nothing when it is
// off. Large active-measurement studies (Sosnowski et al.'s TLS
// fingerprinting scans, Holz et al.'s TLS 1.3 monitoring) only scale
// because every probe attempt and verdict is counted and timed; this
// package gives the reproduction the same substrate.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer owns a tree of spans anchored at a root. All span timestamps are
// offsets from the tracer's base time, so durations come from Go's
// monotonic clock and are immune to wall-clock steps.
type Tracer struct {
	base time.Time
	root *Span
}

// NewTracer starts a tracer whose root span carries the given name and
// begins now.
func NewTracer(name string) *Tracer {
	t := &Tracer{base: time.Now()}
	t.root = &Span{tracer: t, name: name}
	return t
}

// Root returns the root span (nil on a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// now is the monotonic offset since the tracer started.
func (t *Tracer) now() time.Duration { return time.Since(t.base) }

// WriteTree renders the span tree to w, one span per line, indented by
// depth: name, duration, and counts in insertion order. A span that has
// not ended renders with the tracer's current offset as its end.
func (t *Tracer) WriteTree(w io.Writer) {
	if t == nil {
		return
	}
	t.root.writeTree(w, 0)
}

// Count is one named item count attached to a span (records parsed,
// probes attempted, tables rendered, ...).
type Count struct {
	Key   string
	Value int64
}

// Span is one timed region. Spans form a tree; children appear in the
// order Child was called, which instrumented code keeps deterministic by
// creating sibling spans from a single goroutine.
type Span struct {
	tracer *Tracer
	name   string

	mu       sync.Mutex
	start    time.Duration
	end      time.Duration
	ended    bool
	counts   []Count
	children []*Span
}

// Child creates and starts a sub-span. On a nil span it returns nil, so
// the whole instrumentation chain no-ops without allocating.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, name: name, start: s.tracer.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Begin re-stamps the span's start to now. The stage runner pre-allocates
// sibling spans in definition order (so tree shape is deterministic) and
// Begins each one when its stage is actually scheduled.
func (s *Span) Begin() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.start = s.tracer.now()
	s.mu.Unlock()
}

// End stamps the span's end. Ending twice keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.end = s.tracer.now()
		s.ended = true
	}
	s.mu.Unlock()
}

// SetCount attaches (or overwrites) a named item count.
func (s *Span) SetCount(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counts {
		if s.counts[i].Key == key {
			s.counts[i].Value = v
			return
		}
	}
	s.counts = append(s.counts, Count{Key: key, Value: v})
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration is end-start for an ended span, and the running duration
// otherwise (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end - s.start
	}
	return s.tracer.now() - s.start
}

// Counts returns a copy of the span's item counts in insertion order.
func (s *Span) Counts() []Count {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Count(nil), s.counts...)
}

// Children returns a copy of the child slice in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

func (s *Span) writeTree(w io.Writer, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	fmt.Fprintf(w, "%s %.3fms", s.name, float64(s.Duration().Microseconds())/1000)
	for _, c := range s.Counts() {
		fmt.Fprintf(w, " %s=%d", c.Key, c.Value)
	}
	io.WriteString(w, "\n")
	for _, c := range s.Children() {
		c.writeTree(w, depth+1)
	}
}
