package obs

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// snapshotFamily walks one family's series in sorted label order.
func (f *family) snapshot(visit func(labelKey string, series any)) {
	f.mu.Lock()
	keys := append([]string(nil), f.keys...)
	f.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		f.mu.Lock()
		s := f.series[k]
		f.mu.Unlock()
		visit(k, s)
	}
}

// sortedFamilies returns the registry's families by sorted metric name.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		r.mu.Lock()
		out = append(out, r.families[n])
		r.mu.Unlock()
	}
	return out
}

// mergeLabels splices an extra label (le for histogram buckets) into an
// already-rendered label key.
func mergeLabels(key, extra string) string {
	if key == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(key, "}") + "," + extra + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (families sorted by name, series by label key), suitable for a
// /metrics endpoint or a file dump at exit.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		kind := "counter"
		switch {
		case f.isHist:
			kind = "histogram"
		case f.isGauge:
			kind = "gauge"
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, kind)
		f.snapshot(func(key string, series any) {
			switch s := series.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, key, s.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, key, s.Value())
			case *Histogram:
				cum := int64(0)
				counts := s.BucketCounts()
				for i, ub := range s.Bounds() {
					cum += counts[i]
					le := strconv.FormatFloat(ub, 'g', -1, 64)
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, mergeLabels(key, `le="`+le+`"`), cum)
				}
				cum += counts[len(counts)-1]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, mergeLabels(key, `le="+Inf"`), cum)
				fmt.Fprintf(bw, "%s_sum%s %g\n", f.name, key, s.Sum())
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, key, s.Count())
			}
		})
	}
	return bw.Flush()
}

// jsonHistogram is the JSON exposition shape of one histogram series.
type jsonHistogram struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"`
}

// WriteJSON renders the registry as a JSON object: counters and gauges
// as name{labels} -> value, histograms as name{labels} ->
// {count,sum,buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]int64         `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{map[string]int64{}, map[string]int64{}, map[string]jsonHistogram{}}
	for _, f := range r.sortedFamilies() {
		f.snapshot(func(key string, series any) {
			switch s := series.(type) {
			case *Counter:
				out.Counters[f.name+key] = s.Value()
			case *Gauge:
				out.Gauges[f.name+key] = s.Value()
			case *Histogram:
				jh := jsonHistogram{Count: s.Count(), Sum: s.Sum(), Buckets: map[string]int64{}}
				counts := s.BucketCounts()
				for i, ub := range s.Bounds() {
					jh.Buckets[strconv.FormatFloat(ub, 'g', -1, 64)] = counts[i]
				}
				jh.Buckets["+Inf"] = counts[len(counts)-1]
				out.Histograms[f.name+key] = jh
			}
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ParseText parses a Prometheus text exposition into a flat
// series -> value map (bucket/sum/count lines appear as distinct series).
// It is the verification half of WritePrometheus, used by the CI smoke
// check to assert a dumped exposition is well-formed.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// The value is everything after the final space; the series name
		// (with labels) is everything before, and label values may not
		// contain spaces in our exposition.
		i := strings.LastIndexByte(text, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("obs: exposition line %d: no value separator: %q", line, text)
		}
		series, valText := text[:i], text[i+1:]
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: bad value %q: %w", line, valText, err)
		}
		if strings.Count(series, "{") != strings.Count(series, "}") {
			return nil, fmt.Errorf("obs: exposition line %d: unbalanced labels: %q", line, series)
		}
		out[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SumSeries sums every parsed sample whose series name (before any label
// block) equals name — the cross-label total of one family.
func SumSeries(samples map[string]float64, name string) float64 {
	total := 0.0
	for series, v := range samples {
		base := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			base = series[:i]
		}
		if base == name {
			total += v
		}
	}
	return total
}

// PublishExpvar exposes the registry's JSON snapshot as an expvar under
// the given name, visible on /debug/vars. A name that is already
// published is left alone (expvar forbids re-publication), so repeated
// calls are safe.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			return map[string]string{"error": err.Error()}
		}
		var v any
		if err := json.Unmarshal([]byte(b.String()), &v); err != nil {
			return map[string]string{"error": err.Error()}
		}
		return v
	}))
}

// ServeDebug starts an HTTP server on addr exposing the operational
// surface: /metrics (Prometheus text), /metrics.json, /debug/vars
// (expvar), and the /debug/pprof/ endpoints. It returns the server and
// its bound address (addr may use port 0). Callers own shutdown.
func ServeDebug(addr string, r *Registry) (*http.Server, net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: mux}
	//lint:allow goleak the returned *http.Server is the leash: callers own shutdown and Close unblocks Serve
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
